package blockadt

import (
	"fmt"
	"time"

	"blockadt/internal/chains"
	"blockadt/internal/fairness"
	"blockadt/internal/metrics"
	"blockadt/internal/parallel"
	"blockadt/internal/prng"
)

// Scenario is one fully resolved configuration of a scenario matrix:
// a (system, link, adversary, topology, n, blocks, seed) point.
type Scenario struct {
	System    string `json:"system"`
	Link      string `json:"link"`
	Adversary string `json:"adversary"`
	// LinkParams is the link model's canonical parameter string
	// (LinkSpec.Params), stamped during matrix expansion. Empty for the
	// parameterless models, so pre-existing scenario keys — and the
	// seeds derived from them — are unchanged.
	LinkParams string `json:"linkParams,omitempty"`
	// Topology and TopoParams name the dissemination topology and its
	// canonical parameter string. Both stay empty for the default
	// complete graph, so pre-existing scenarios — their JSON, keys and
	// derived seeds — are byte-for-byte unchanged.
	Topology   string `json:"topology,omitempty"`
	TopoParams string `json:"topoParams,omitempty"`
	// Alpha is the adversary's merit share (adversarial runs only).
	Alpha float64 `json:"alpha,omitempty"`
	N     int     `json:"n"`
	// Blocks is the target committed chain length.
	Blocks int `json:"blocks"`
	// SeedIndex is the scenario's position along the matrix's seed
	// dimension; Seed is the stream actually used, derived from the
	// root seed and the canonical key (DeriveSeed).
	SeedIndex int    `json:"seedIndex"`
	Seed      uint64 `json:"seed"`
}

// Key returns the canonical identity of the scenario — everything that
// distinguishes it within a matrix except the derived seed itself. Link
// parameters — and the topology, when non-default — join the key only
// when present, so the parameterless complete-graph scenarios keep their
// historical keys (and derived seeds) byte for byte.
func (c Scenario) Key() string {
	key := fmt.Sprintf("%s|%s|%s|a=%.4f|n=%d|b=%d|s=%d",
		c.System, c.Link, c.Adversary, c.Alpha, c.N, c.Blocks, c.SeedIndex)
	if c.LinkParams != "" {
		key += "|lp=" + c.LinkParams
	}
	if c.Topology != "" {
		key += "|topo=" + c.Topology
		if c.TopoParams != "" {
			key += "|tp=" + c.TopoParams
		}
	}
	return key
}

// DeriveSeed returns the scenario's independent prng stream:
// prng.Mix(root, hash(Key)). Two scenarios that differ in any matrix
// coordinate get unrelated streams; the same scenario under the same
// root always gets the same stream, regardless of where it sits in the
// expansion order or which worker runs it.
func (c Scenario) DeriveSeed(root uint64) uint64 {
	return prng.Mix(root, hashString(c.Key()))
}

// hashString folds a string into a 64-bit value with the repository's
// stateless mixer (an FNV-style byte fold finished by prng.Mix, so the
// result is well distributed even for short keys).
func hashString(s string) uint64 {
	const prime = 0x100000001B3
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return prng.Mix(h, uint64(len(s)))
}

// Matrix spans a scenario cross product. Zero-valued dimensions fall back
// to defaults (every registered system, synchronous links, no adversary,
// the complete graph, n=8, one seed).
type Matrix struct {
	// Systems are registered system names; empty = every registered
	// system in registration order (for the built-ins, Table 1 order).
	Systems []string `json:"systems,omitempty"`
	// Links are registered link-model names; empty = {sync}.
	Links []string `json:"links,omitempty"`
	// Adversaries are registered adversary names; empty = {none}.
	Adversaries []string `json:"adversaries,omitempty"`
	// Topologies are registered topology names; empty = {complete}.
	Topologies []string `json:"topologies,omitempty"`
	// Ns are process counts; empty = {8}.
	Ns []int `json:"ns,omitempty"`
	// Seeds is the number of seed indices per point; 0 = 1.
	Seeds int `json:"seeds,omitempty"`
	// RootSeed drives every derived stream. Unlike the other knobs, 0
	// is NOT remapped: it is a valid root and is used as-is, so an
	// explicit `-seed 0` sweep is distinct from the CLI's default 42.
	RootSeed uint64 `json:"rootSeed"`
	// TargetBlocks is the committed-chain target per run; 0 = 30.
	TargetBlocks int `json:"targetBlocks,omitempty"`
	// Alpha is the adversary's merit share; 0 = 0.34 (a zero-merit
	// adversary is degenerate, so zero means unset here).
	Alpha float64 `json:"alpha,omitempty"`
	// Metrics names the registered collectors to run per scenario;
	// empty disables collection (the zero-overhead default). Collectors
	// do not influence the simulation, so a scenario's identity (Key,
	// derived seed) is independent of them — only the Result rows gain
	// a metrics object.
	Metrics []string `json:"metrics,omitempty"`
	// ShardIndex/ShardCount restrict the expansion to one deterministic
	// partition of the cross product (set them through Shard). A
	// scenario's shard is a pure function of its canonical key, so the
	// partition is independent of dimension ordering and expansion
	// order: shards are disjoint, their union is the full matrix, and a
	// scenario never migrates between shards when the matrix's lists
	// are permuted. ShardCount 0 (or 1) means unsharded.
	ShardIndex int `json:"shardIndex,omitempty"`
	ShardCount int `json:"shardCount,omitempty"`
}

// Shard returns a copy of the matrix restricted to the index'th of
// count deterministic partitions (0 ≤ index < count). Sharded sweeps
// run disjoint scenario subsets whose union is exactly the unsharded
// expansion — Merge reassembles their reports into the canonical whole.
func (m Matrix) Shard(index, count int) (Matrix, error) {
	if count < 1 {
		return Matrix{}, fmt.Errorf("blockadt: shard count must be >= 1, got %d", count)
	}
	if index < 0 || index >= count {
		return Matrix{}, fmt.Errorf("blockadt: shard index %d out of range [0,%d)", index, count)
	}
	m.ShardIndex, m.ShardCount = index, count
	return m, nil
}

// shard reports which of count partitions the scenario belongs to: a
// hash of the canonical key, deliberately domain-separated from the
// seed-derivation hash so shard membership and prng streams stay
// uncorrelated.
func (c Scenario) shard(count int) int {
	return int(hashString("shard|"+c.Key()) % uint64(count))
}

// Table1 returns the matrix regenerating Table 1: every registered
// system, one honest synchronous run each.
func Table1(n, blocks int, seed uint64) Matrix {
	return Matrix{Ns: []int{n}, TargetBlocks: blocks, RootSeed: seed}
}

func (m Matrix) withDefaults() Matrix {
	if len(m.Systems) == 0 {
		m.Systems = SystemNames()
	}
	if len(m.Links) == 0 {
		m.Links = []string{LinkSync}
	}
	if len(m.Adversaries) == 0 {
		m.Adversaries = []string{AdvNone}
	}
	if len(m.Topologies) == 0 {
		m.Topologies = []string{TopoComplete}
	}
	if len(m.Ns) == 0 {
		m.Ns = []int{8}
	}
	if m.Seeds <= 0 {
		m.Seeds = 1
	}
	if m.TargetBlocks <= 0 {
		m.TargetBlocks = 30
	}
	if m.Alpha == 0 {
		m.Alpha = 0.34
	}
	return m
}

// Configs expands the matrix into its resolved scenarios, in
// deterministic (systems → links → adversaries → topologies → ns →
// seeds) order, pruning combinations no registered simulator implements.
// It errors on unregistered systems, links, adversaries or topologies so
// a typo fails loudly instead of silently sweeping nothing.
func (m Matrix) Configs() ([]Scenario, error) {
	m = m.withDefaults()
	for _, name := range m.Systems {
		if _, err := LookupSystem(name); err != nil {
			return nil, err
		}
	}
	// withDefaults remapped 0 to 0.34, so anything outside (0,1) here is
	// caller input — reject it before it builds degenerate merit tapes.
	if m.Alpha <= 0 || m.Alpha >= 1 {
		return nil, fmt.Errorf("blockadt: adversary merit share must be in (0,1), got %v", m.Alpha)
	}
	// Metrics do not expand into scenarios, but a typo in the list must
	// fail here like one in any other dimension.
	if _, err := m.metricSpecs(); err != nil {
		return nil, err
	}
	if m.ShardCount < 0 {
		return nil, fmt.Errorf("blockadt: shard count must be >= 1, got %d", m.ShardCount)
	}
	if m.ShardCount > 0 && (m.ShardIndex < 0 || m.ShardIndex >= m.ShardCount) {
		return nil, fmt.Errorf("blockadt: shard index %d out of range [0,%d)", m.ShardIndex, m.ShardCount)
	}
	var out []Scenario
	for _, sys := range m.Systems {
		for _, link := range m.Links {
			lspec, err := LookupLink(link)
			if err != nil {
				return nil, err
			}
			if !lspec.supportsSystem(sys) {
				continue
			}
			for _, adv := range m.Adversaries {
				aspec, err := LookupAdversary(adv)
				if err != nil {
					return nil, err
				}
				if aspec.Plan != nil && !aspec.supportsSystem(sys, link) {
					continue
				}
				for _, topo := range m.Topologies {
					tspec, err := LookupTopology(topo)
					if err != nil {
						return nil, err
					}
					if tspec.Plan != nil && !tspec.supportsScenario(sys, link, adv) {
						continue
					}
					for _, n := range m.Ns {
						for s := 0; s < m.Seeds; s++ {
							cfg := Scenario{
								System: sys, Link: link, Adversary: adv,
								LinkParams: lspec.Params,
								N:          n, Blocks: m.TargetBlocks, SeedIndex: s,
							}
							if aspec.Plan != nil {
								cfg.Alpha = m.Alpha
							}
							if tspec.Plan != nil {
								// The default complete graph stays out of
								// the scenario entirely: its keys, JSON
								// and derived seeds predate the topology
								// dimension.
								cfg.Topology = topo
								cfg.TopoParams = tspec.Params
							}
							if m.ShardCount > 1 && cfg.shard(m.ShardCount) != m.ShardIndex {
								continue
							}
							cfg.Seed = cfg.DeriveSeed(m.RootSeed)
							out = append(out, cfg)
						}
					}
				}
			}
		}
	}
	return out, nil
}

// metricSpecs resolves the matrix's metric names against the registry.
func (m Matrix) metricSpecs() ([]MetricSpec, error) {
	specs := make([]MetricSpec, 0, len(m.Metrics))
	for _, name := range m.Metrics {
		spec, err := LookupMetric(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// Result is the structured outcome of one scenario.
type Result struct {
	Config Scenario `json:"config"`
	// Refinement is the simulator's claimed refinement (for honest
	// Table 1 runs, the paper's row).
	Refinement string `json:"refinement"`
	// Expected and Level are the anticipated vs measured consistency
	// levels; Match reports their agreement.
	Expected string `json:"expected"`
	Level    string `json:"level"`
	Match    bool   `json:"match"`
	// Blocks / Forks / Ticks / Delivered / Dropped summarize the run.
	Blocks    int   `json:"blocks"`
	Forks     int   `json:"forks"`
	Ticks     int64 `json:"ticks"`
	Delivered int   `json:"delivered"`
	Dropped   int   `json:"dropped"`
	// MaxReorg is the deepest rollback observed between consecutive
	// reads of any single process; FinalityDepth = MaxReorg+1 is the
	// smallest depth-d finality gadget that would have been safe on
	// this run.
	MaxReorg      int `json:"maxReorg"`
	FinalityDepth int `json:"finalityDepth"`
	// FairnessTVD is the total variation distance between realized and
	// entitled block shares (chain quality for adversarial runs).
	FairnessTVD float64 `json:"fairnessTVD"`
	// AdversaryShare is the adversary's realized main-chain share
	// (adversarial runs only).
	AdversaryShare float64 `json:"adversaryShare,omitempty"`
	// Metrics holds the values of the collectors the matrix requested
	// (Matrix.Metrics), keyed by metric name; nil when collection is
	// disabled, and inapplicable collectors are absent rather than zero.
	// Every value is a pure function of the run, so metrics-enabled
	// sweep JSON stays byte-identical at any parallelism.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// WallNS is the measured wall-clock cost of the run. It is
	// excluded from the canonical JSON: it is the one field that is
	// not deterministic.
	WallNS int64 `json:"-"`
}

// Report is a completed sweep.
type Report struct {
	RootSeed uint64   `json:"rootSeed"`
	Results  []Result `json:"results"`
	// Total / Matched aggregate the verdicts; Ticks totals virtual
	// time across scenarios.
	Total   int   `json:"total"`
	Matched int   `json:"matched"`
	Ticks   int64 `json:"ticks"`
	// WallNS is the sweep's wall-clock time (excluded from canonical
	// JSON, like Result.WallNS).
	WallNS int64 `json:"-"`
	// Parallelism is the worker count actually used. Excluded from
	// the canonical JSON so sweeps at different parallelism remain
	// byte-comparable.
	Parallelism int `json:"-"`
}

// Run expands the matrix and executes every scenario across a bounded
// pool of the given parallelism (<1 selects NumCPU). Results are in
// matrix-expansion order regardless of scheduling. With WithStore,
// cached scenarios are served from the run store without simulating and
// misses are computed and persisted — the report is byte-identical
// either way.
func Run(m Matrix, parallelism int, opts ...RunOption) (*Report, error) {
	configs, err := m.Configs()
	if err != nil {
		return nil, err
	}
	specs, err := m.metricSpecs()
	if err != nil {
		return nil, err
	}
	rcfg := applyRunOptions(opts)
	runner, err := newSweepRunner(rcfg, m, configs, specs)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	results := parallel.Map(configs, parallelism, func(i int, cfg Scenario) Result {
		return runner.exec(nil, i, cfg)
	})
	if err := runner.err(); err != nil {
		return nil, err
	}
	if err := runner.finish(rcfg.storeGC, m); err != nil {
		return nil, err
	}
	rep := &Report{
		RootSeed:    m.RootSeed,
		Results:     results,
		Total:       len(results),
		WallNS:      time.Since(start).Nanoseconds(),
		Parallelism: parallel.Workers(parallelism),
	}
	for _, r := range results {
		if r.Match {
			rep.Matched++
		}
		rep.Ticks += r.Ticks
	}
	return rep, nil
}

// RunScenario executes one fully resolved scenario — simulate, classify,
// measure — dispatching through the system/link/adversary registries. It
// applies the same validation Matrix.Configs does while expanding: a name
// no registry knows, a combination no simulator supports, or an
// out-of-range adversary merit share is an error instead of a silently
// wrong run. Scenarios expanded by Matrix.Configs are always valid.
func RunScenario(cfg Scenario) (Result, error) {
	if _, err := LookupSystem(cfg.System); err != nil {
		return Result{}, err
	}
	lspec, err := LookupLink(cfg.Link)
	if err != nil {
		return Result{}, err
	}
	if !lspec.supportsSystem(cfg.System) {
		return Result{}, fmt.Errorf("blockadt: system %q does not implement link model %q", cfg.System, cfg.Link)
	}
	aspec, err := LookupAdversary(cfg.Adversary)
	if err != nil {
		return Result{}, err
	}
	if aspec.Plan != nil {
		if !aspec.supportsSystem(cfg.System, cfg.Link) {
			return Result{}, fmt.Errorf("blockadt: system %q does not implement adversary %q under link %q", cfg.System, cfg.Adversary, cfg.Link)
		}
		if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
			return Result{}, fmt.Errorf("blockadt: adversary merit share must be in (0,1), got %v", cfg.Alpha)
		}
	}
	if cfg.Topology != "" {
		tspec, err := LookupTopology(cfg.Topology)
		if err != nil {
			return Result{}, err
		}
		if tspec.Plan != nil && !tspec.supportsScenario(cfg.System, cfg.Link, cfg.Adversary) {
			return Result{}, fmt.Errorf("blockadt: system %q does not implement topology %q under link %q and adversary %q", cfg.System, cfg.Topology, cfg.Link, cfg.Adversary)
		}
	}
	return runScenario(cfg, nil), nil
}

// runScenario is RunScenario's engine-side core. It assumes the scenario
// was validated (Matrix.Configs and RunScenario both do): an unknown
// system name panics, and an unknown link, adversary or topology name
// degrades to the honest synchronous path — neither can reach here
// through the exported entry points. mspecs are the resolved metric
// collectors to run over the result (nil disables collection).
func runScenario(cfg Scenario, mspecs []MetricSpec) Result {
	scenarioRuns.Add(1)
	p := SimParams{N: cfg.N, TargetBlocks: cfg.Blocks, Seed: cfg.Seed}
	start := time.Now()

	var (
		expected    Level
		out         Result
		adversarial bool
	)
	spec, err := LookupSystem(cfg.System)
	if err != nil {
		// Configs() and RunScenario validated the name; an error here
		// is a bug.
		panic(err)
	}
	aspec, aerr := LookupAdversary(cfg.Adversary)
	lspec, lerr := LookupLink(cfg.Link)
	ex := Execution{System: specSystem{spec}, Params: ExecutionParams{Params: p}}
	switch {
	case aerr == nil && aspec.Plan != nil:
		ex.Params.Alpha = cfg.Alpha
		aspec.Plan(&ex)
		adversarial = true
		expected = spec.Expected
		if aspec.Expected != nil {
			expected = aspec.Expected(cfg.System, cfg.Link, spec.Expected)
		}
	case lerr == nil && lspec.Plan != nil:
		lspec.Plan(&ex)
		expected = linkExpected(lspec, cfg.System, spec.Expected)
	default:
		expected = spec.Expected
		if lerr == nil {
			// A link model registered without its own plan may still
			// adjust the predicted level (LinkSpec.Expected).
			expected = linkExpected(lspec, cfg.System, spec.Expected)
		}
	}
	if cfg.Topology != "" {
		if tspec, terr := LookupTopology(cfg.Topology); terr == nil && tspec.Plan != nil {
			tspec.Plan(&ex)
			if tspec.Expected != nil {
				expected = tspec.Expected(cfg.System, cfg.Link, expected)
			}
		}
	}
	res, err := chains.Execute(ex)
	if err != nil {
		// Configs() and RunScenario validated the composition; an
		// executor rejection here is a registration bug (e.g. a custom
		// link spec whose Supports accepts a system its plan cannot
		// run).
		panic(convertExecuteErr(err))
	}
	if adversarial {
		stats := adversaryOutcome(aspec, cfg.System, cfg.Link, p, cfg.Alpha, spec.Expected, res)
		out.AdversaryShare = stats.AdversaryShare
		out.FairnessTVD = stats.FairnessTVD
	} else {
		out.FairnessTVD = fairness.Analyze(res.History, equalMerits(cfg.N)).TVD
	}

	cls := ClassifyRun(p, res)
	out.Config = cfg
	out.Refinement = res.Refinement
	out.Expected = expected.String()
	out.Level = cls.Level.String()
	out.Match = cls.Level == expected
	out.Blocks = res.Blocks
	out.Forks = res.Forks
	out.Ticks = res.Ticks
	out.Delivered = res.Delivered
	out.Dropped = res.Dropped
	out.MaxReorg = metrics.MaxReorg(res.History)
	out.FinalityDepth = out.MaxReorg + 1
	if len(mspecs) > 0 {
		out.Metrics = computeMetrics(mspecs, metricRun(cfg, res, out, adversarial))
	}
	out.WallNS = time.Since(start).Nanoseconds()
	return out
}

// metricRun assembles the collector snapshot from a completed scenario.
func metricRun(cfg Scenario, res SimResult, out Result, adversarial bool) MetricRun {
	run := newMetricRun(SimParams{N: cfg.N, TargetBlocks: cfg.Blocks}, res)
	run.FairnessTVD = out.FairnessTVD
	run.Adversarial = adversarial
	run.AdversaryShare = out.AdversaryShare
	run.AdversaryMerit = cfg.Alpha
	return run
}

// newMetricRun is the one SimResult → MetricRun field mapping, shared by
// every entry point that collects metrics (runScenario, Simulate,
// SimulateAdversary). The params are normalized the way the simulators
// normalize them (chains.Params.WithDefaults), so the snapshot describes
// the run that actually happened — an N=0 request ran 8 processes.
// Callers fill the fairness/adversary fields the result type carries.
func newMetricRun(p SimParams, res SimResult) MetricRun {
	p = p.WithDefaults()
	return MetricRun{
		N:             p.N,
		TargetBlocks:  p.TargetBlocks,
		Blocks:        res.Blocks,
		Forks:         res.Forks,
		Ticks:         res.Ticks,
		Delivered:     res.Delivered,
		Dropped:       res.Dropped,
		Bytes:         res.Bytes,
		PartitionHeal: res.PartitionHeal,
		History:       res.History,
	}
}

// computeMetrics runs the collectors over the snapshot, skipping
// inapplicable ones.
func computeMetrics(specs []MetricSpec, r MetricRun) map[string]float64 {
	out := make(map[string]float64, len(specs))
	for _, spec := range specs {
		if v, ok := spec.Compute(r); ok {
			out[spec.Name] = v
		}
	}
	return out
}

// Parallelism reports the worker count a requested parallelism resolves
// to (<1 selects NumCPU) — the value Report.Parallelism records.
func Parallelism(requested int) int { return parallel.Workers(requested) }

// equalMerits is the uniform entitlement used for honest runs. It
// mirrors the simulators' process-count default (N = 0 → 8) so the
// entitlement vector always lines up with the processes that actually
// ran.
func equalMerits(n int) []float64 {
	if n <= 0 {
		n = 8
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
