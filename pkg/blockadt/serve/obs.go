package serve

// Serve-side observability: request IDs, structured request logging,
// and the Prometheus text face of /metricsz. The engine-side spans and
// histograms live in internal/obs and are threaded through the sweeps
// via blockadt.WithTracer; this file is the HTTP skin over them.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"blockadt/internal/obs"
	"blockadt/pkg/blockadt"
)

type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request ID the middleware assigned (or honored)
// for this request — the value echoed in the X-Request-Id response
// header and stamped into every scenario span the request produced.
// Empty outside a middleware-wrapped request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// validRequestID accepts client-supplied IDs that are safe to echo and
// log: short and made of unambiguous token characters.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// nextRequestID mints a process-unique ID: a random per-process prefix
// plus a sequence number, so IDs from two coordinators never collide in
// a merged log stream.
func (s *Server) nextRequestID() string {
	return s.reqPrefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// newRequestPrefix draws the per-process ID prefix.
func newRequestPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A failed entropy read degrades to a fixed prefix: IDs remain
		// unique within the process, which is what handlers rely on.
		return "r-0"
	}
	return "r-" + hex.EncodeToString(b[:])
}

// statusWriter captures the response status and byte count for the
// request log while preserving http.Flusher for NDJSON streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) statusCode() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// middleware assigns (or honors) the request ID, echoes it in the
// response, and writes one structured log line per request. Scrape and
// liveness endpoints log at Debug so a tight Prometheus scrape loop
// does not flood an Info-level log.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = s.nextRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/metricsz" {
			level = slog.LevelDebug
		}
		s.log.LogAttrs(ctx, level, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.statusCode()),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("elapsed", time.Since(start)),
		)
	})
}

// requestTracer builds the per-request engine tracer: spans flow into
// the server's process-wide latency histograms, tagged with the request
// ID that submitted them.
func (s *Server) requestTracer(ctx context.Context) blockadt.Tracer {
	return blockadt.TaggedTracer(RequestID(ctx), s.lat)
}

// wantsPrometheus implements /metricsz content negotiation: the JSON
// face stays the default (no Accept header, */*, application/json);
// `Accept: text/plain` — what Prometheus and OpenMetrics scrapers send
// — selects the exposition format.
func wantsPrometheus(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics-text")
}

// writePrometheus renders the full snapshot in exposition format
// v0.0.4. Series names are stable API — docs/observability.md documents
// them, CI asserts the core ones, and the golden test in internal/obs
// pins the line format itself.
func writePrometheus(w http.ResponseWriter, snap metricsSnapshot) {
	w.Header().Set("Content-Type", obs.PromContentType)
	p := obs.NewProm(w)

	bi := snap.Build
	p.Gauge("btadt_build_info", "Build metadata; the value is always 1.", 1,
		obs.Label{Name: "version", Value: bi.Version},
		obs.Label{Name: "goversion", Value: bi.GoVersion},
		obs.Label{Name: "engine", Value: bi.Engine})
	p.Gauge("btadt_uptime_seconds", "Seconds since the coordinator started.", snap.UptimeSeconds)

	p.Counter("btadt_scenario_runs_total",
		"Process-wide simulator invocations (blockadt.ScenarioRuns); unchanged between scrapes means everything was served from cache.",
		float64(snap.ScenarioRuns))
	p.Counter("btadt_scenarios_completed_total",
		"Results streamed to clients or merged from workers, any provenance.",
		float64(snap.ScenariosCompleted))
	p.Counter("btadt_scenarios_simulated_total",
		"Scenarios this coordinator actually simulated for requests.",
		float64(snap.Simulated))
	p.Counter("btadt_scenarios_cache_hits_total",
		"Scenarios served from the content-addressed run store.",
		float64(snap.CacheHits))
	p.Counter("btadt_scenarios_coalesced_total",
		"Scenarios satisfied by another request's in-flight simulation.",
		float64(snap.Coalesced))

	p.Gauge("btadt_inflight_sweeps", "Sweep submissions currently streaming.", float64(snap.InflightSweeps))
	p.Gauge("btadt_inflight_scenarios", "Scenario simulations in flight right now.", float64(snap.InflightScenarios))
	p.Gauge("btadt_sweeps", "Sweeps retained in the polling registry.", float64(snap.Sweeps))
	p.Gauge("btadt_jobs", "Sharded work jobs known to the coordinator.", float64(snap.Jobs))

	p.Gauge("btadt_work_queue_depth", "Shards a lease call would hand out right now.", float64(snap.QueueDepth))
	p.Header("btadt_work_shards", "gauge", "Worker-protocol shards by state across all jobs.")
	p.Sample("btadt_work_shards", []obs.Label{{Name: "state", Value: "pending"}}, float64(snap.WorkShards.Pending))
	p.Sample("btadt_work_shards", []obs.Label{{Name: "state", Value: "leased"}}, float64(snap.WorkShards.Leased))
	p.Sample("btadt_work_shards", []obs.Label{{Name: "state", Value: "expired"}}, float64(snap.WorkShards.Expired))
	p.Sample("btadt_work_shards", []obs.Label{{Name: "state", Value: "done"}}, float64(snap.WorkShards.Done))
	p.Counter("btadt_lease_expirations_total",
		"Leased shards whose TTL lapsed and were re-offered to other workers.",
		float64(snap.LeaseExpirations))

	p.Gauge("btadt_store_entries", "Entries in the content-addressed run store.", float64(snap.StoreEntries))
	p.Counter("btadt_store_hits_total", "Run-store read hits through this handle.", float64(snap.Store.Hits))
	p.Counter("btadt_store_misses_total", "Run-store read misses through this handle.", float64(snap.Store.Misses))
	p.Counter("btadt_store_puts_total", "Run-store writes through this handle.", float64(snap.Store.Puts))
	p.Counter("btadt_store_bytes_read_total", "Bytes read from the run store.", float64(snap.Store.BytesRead))
	p.Counter("btadt_store_bytes_written_total", "Bytes written to the run store.", float64(snap.Store.BytesWritten))

	p.Latencies("btadt_scenario_phase_seconds",
		"Per-scenario execution latency by phase (queue, store_get, simulate, store_put, total) and outcome (simulated, cache-hit, coalesced, skipped).",
		snap.Latencies)
	if err := p.Err(); err != nil {
		// The client went away mid-scrape; nothing useful left to do.
		return
	}
}
