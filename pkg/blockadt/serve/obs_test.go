package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"blockadt/internal/obs"
	"blockadt/pkg/blockadt"
)

// scrapeProm fetches /metricsz with the Prometheus Accept header and
// parses every sample line into "name{labels}" → value.
func scrapeProm(t *testing.T, base string) (map[string]float64, string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, base+"/metricsz", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus content type = %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in sample line %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples, string(body)
}

// TestMetricszPrometheus pins the exposition face: core series carry
// the same numbers as the JSON face, build info is labeled, and the
// phase summary exposes p50/p99 per phase and outcome.
func TestMetricszPrometheus(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	m := serveTestMatrix(38)
	total := float64(matrixTotal(t, m))

	submitSweep(t, ts.URL, m) // cold: everything simulated
	submitSweep(t, ts.URL, m) // warm: everything a cache hit

	samples, body := scrapeProm(t, ts.URL)

	for series, want := range map[string]float64{
		"btadt_scenarios_simulated_total":    total,
		"btadt_scenarios_cache_hits_total":   total,
		"btadt_scenarios_completed_total":    2 * total,
		"btadt_inflight_sweeps":              0,
		"btadt_work_queue_depth":             0,
		`btadt_work_shards{state="pending"}`: 0,
		"btadt_store_puts_total":             total,
	} {
		got, ok := samples[series]
		if !ok {
			t.Fatalf("exposition is missing %s:\n%s", series, body)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", series, got, want)
		}
	}

	bi := blockadt.Build()
	info := `btadt_build_info{version="` + bi.Version + `",goversion="` + bi.GoVersion +
		`",engine="` + bi.Engine + `"}`
	if samples[info] != 1 {
		t.Fatalf("exposition is missing %s:\n%s", info, body)
	}

	// The phase summary: simulated scenarios have a simulate phase,
	// cache hits do not; both have total-phase quantiles and counts.
	for _, series := range []string{
		`btadt_scenario_phase_seconds{phase="total",outcome="simulated",quantile="0.5"}`,
		`btadt_scenario_phase_seconds{phase="total",outcome="simulated",quantile="0.99"}`,
		`btadt_scenario_phase_seconds{phase="simulate",outcome="simulated",quantile="0.5"}`,
		`btadt_scenario_phase_seconds{phase="total",outcome="cache-hit",quantile="0.5"}`,
		`btadt_scenario_phase_seconds{phase="store_get",outcome="cache-hit",quantile="0.99"}`,
	} {
		v, ok := samples[series]
		if !ok {
			t.Fatalf("exposition is missing %s:\n%s", series, body)
		}
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("%s = %v, want a positive duration", series, v)
		}
	}
	for _, outcome := range []string{"simulated", "cache-hit"} {
		series := `btadt_scenario_phase_seconds_count{phase="total",outcome="` + outcome + `"}`
		if samples[series] != total {
			t.Fatalf("%s = %v, want %v", series, samples[series], total)
		}
	}
	if series := `btadt_scenario_phase_seconds{phase="simulate",outcome="cache-hit",quantile="0.5"}`; hasSample(samples, series) {
		t.Fatalf("cache hits must not report a simulate phase, got %s", series)
	}

	// The default face is unchanged: no Accept header still means JSON.
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metricsz content type = %q, want JSON", ct)
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if float64(snap.Simulated) != samples["btadt_scenarios_simulated_total"] {
		t.Fatalf("JSON simulated %d disagrees with exposition %v",
			snap.Simulated, samples["btadt_scenarios_simulated_total"])
	}
}

func hasSample(samples map[string]float64, series string) bool {
	_, ok := samples[series]
	return ok
}

// TestMetricszConcurrentScrape hammers both faces of /metricsz while a
// sweep is in flight — the race detector's view of snapshotting the
// histograms and counters mid-update.
func TestMetricszConcurrentScrape(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	m := serveTestMatrix(39)

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metricsz", nil)
				if i%2 == 0 {
					req.Header.Set("Accept", "text/plain")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape during sweep: %s", resp.Status)
					return
				}
			}
		}(i)
	}
	submitSweep(t, ts.URL, m)
	close(done)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	samples, body := scrapeProm(t, ts.URL)
	if samples["btadt_scenarios_simulated_total"] != float64(matrixTotal(t, m)) {
		t.Fatalf("post-sweep exposition wrong:\n%s", body)
	}
}

// TestRequestIDMiddleware pins the ID contract: a valid client-supplied
// X-Request-Id is echoed, a missing or hostile one is replaced with a
// minted process-unique ID.
func TestRequestIDMiddleware(t *testing.T) {
	ts, _ := newTestServer(t, nil)

	get := func(id string) string {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("X-Request-Id")
	}

	if got := get("client-id.42"); got != "client-id.42" {
		t.Fatalf("valid client ID not echoed: got %q", got)
	}
	minted := get("")
	if minted == "" {
		t.Fatal("no request ID minted for a bare request")
	}
	if again := get(""); again == minted {
		t.Fatalf("two minted IDs collided: %q", minted)
	}
	if got := get(`bad "id" with spaces`); got == `bad "id" with spaces` || got == "" {
		t.Fatalf("hostile ID should be replaced, got %q", got)
	}
}
