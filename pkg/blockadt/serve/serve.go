// Package serve is the cache-first sweep service: a long-running
// HTTP/JSON server that accepts scenario matrices, streams per-scenario
// results back as newline-delimited JSON while they complete, and dedups
// identical work three ways —
//
//   - across requests, through the content-addressed run store (a
//     scenario swept once is a cache hit forever under the same engine
//     version);
//   - across concurrent requests, through a process-wide Singleflight
//     keyed on the scenario's store key (n identical in-flight
//     submissions simulate each scenario once, not n times);
//   - across machines, through the worker protocol (workers lease
//     deterministic matrix shards, sweep them against a local store, and
//     upload the resulting envelopes for the coordinator to merge — a
//     content-addressed file copy in HTTP form).
//
// Endpoints (all JSON unless noted):
//
//	POST /v1/sweeps                       submit a Matrix; streams NDJSON results + summary
//	GET  /v1/sweeps/{id}                  poll a sweep; ETag/304 once done
//	GET  /v1/sweeps/{id}/report           canonical sweep report (byte-identical to `btadt sweep -json`)
//	POST /v1/work                         enqueue a sharded matrix for workers
//	GET  /v1/work/{id}                    poll shard progress
//	POST /v1/work/lease                   worker: lease one shard (204 when idle)
//	POST /v1/work/{id}/shards/{i}/complete worker: upload the shard's store envelopes
//	GET  /healthz                         liveness (text)
//	GET  /metricsz                        scenarios/sec, cache counters, gauges
//
// The server holds no per-sweep result buffers: streaming rides
// blockadt.Stream (bounded reorder window), polling state is O(1) per
// sweep, and reports are re-served from the store rather than retained
// in memory — thousands of concurrent clients see bounded memory. The
// service is unauthenticated and meant for a trusted network, like a CI
// fleet or a lab cluster.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blockadt/pkg/blockadt"
)

// Config parameterizes New. Store is required; everything else has a
// serviceable default.
type Config struct {
	// Store is the shared content-addressed run store every sweep is
	// served from and persisted into.
	Store *blockadt.RunStore
	// Parallelism is the per-sweep worker pool size (<1 selects NumCPU).
	Parallelism int
	// MaxBodyBytes bounds matrix submissions (default 1 MiB). Larger
	// bodies are rejected with 413.
	MaxBodyBytes int64
	// MaxUploadBytes bounds worker shard-result uploads (default 256 MiB).
	MaxUploadBytes int64
	// MaxSweeps caps the polling registry; the oldest finished sweeps
	// are evicted past it (default 1024). Evicted sweeps lose polling
	// state only — their results stay in the store.
	MaxSweeps int
	// LeaseTTL is how long a worker may sit on a leased shard before the
	// coordinator re-leases it to someone else (default 5 minutes).
	LeaseTTL time.Duration
	// Logger receives the structured request log (one line per request,
	// tagged with the request ID) and operational events like lease
	// expiries. nil discards — handlers never log through a nil check.
	Logger *slog.Logger
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.Store == nil {
		return c, errors.New("serve: Config.Store is required")
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 1024
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// discardHandler drops every record (slog.DiscardHandler needs go1.24;
// the module targets go1.23).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Server is the coordinator: HTTP handlers plus the sweep registry and
// the shard work queue. Create with New, mount with Handler.
type Server struct {
	cfg    Config
	flight *blockadt.Singleflight
	mux    *http.ServeMux
	log    *slog.Logger
	// lat is the process-wide latency histogram set every request's
	// scenario spans fold into — the data behind the Prometheus
	// btadt_scenario_phase_seconds summary.
	lat       *blockadt.Latencies
	reqSeq    atomic.Uint64
	reqPrefix string

	mu     sync.Mutex
	sweeps map[string]*sweepState
	order  []string // sweep ids, oldest first, for eviction
	jobs   map[string]*shardJob
	jobIDs []string // job ids in enqueue order, for FIFO leasing

	started        time.Time
	inflightSweeps atomic.Int64
	completed      atomic.Uint64 // results streamed or merged, any provenance
	simulated      atomic.Uint64
	cacheHits      atomic.Uint64
	coalesced      atomic.Uint64
	leaseExpired   atomic.Uint64
}

// sweepState is the O(1) polling record of one submitted sweep.
type sweepState struct {
	ID        string
	Matrix    blockadt.Matrix
	Status    string // "running", "done", "failed"
	Total     int
	Completed int
	Simulated uint64
	CacheHits uint64
	Coalesced uint64
	Err       string
	CreatedAt time.Time
	UpdatedAt time.Time
}

// sweepStatus is the poll-endpoint wire form.
type sweepStatus struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Simulated uint64 `json:"simulated"`
	CacheHits uint64 `json:"cacheHits"`
	Coalesced uint64 `json:"coalesced"`
	Error     string `json:"error,omitempty"`
	CreatedAt string `json:"createdAt"`
	UpdatedAt string `json:"updatedAt"`
}

// SweepSummary is the final NDJSON line of a streamed sweep — the
// request-level census of how its scenarios were satisfied.
type SweepSummary struct {
	ID        string `json:"id"`
	Total     int    `json:"total"`
	Matched   int    `json:"matched"`
	Ticks     int64  `json:"ticks"`
	Simulated uint64 `json:"simulated"`
	CacheHits uint64 `json:"cacheHits"`
	Coalesced uint64 `json:"coalesced"`
	Skipped   uint64 `json:"skipped"`
}

// New builds a Server around the given store.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		flight:    blockadt.NewSingleflight(),
		log:       cfg.Logger,
		lat:       blockadt.NewLatencies(),
		reqPrefix: newRequestPrefix(),
		sweeps:    map[string]*sweepState{},
		jobs:      map[string]*shardJob{},
		started:   cfg.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handlePoll)
	mux.HandleFunc("GET /v1/sweeps/{id}/report", s.handleReport)
	mux.HandleFunc("POST /v1/work", s.handleEnqueue)
	mux.HandleFunc("GET /v1/work/{id}", s.handleJobStatus)
	mux.HandleFunc("POST /v1/work/lease", s.handleLease)
	mux.HandleFunc("POST /v1/work/{id}/shards/{index}/complete", s.handleComplete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler: the route mux wrapped in
// the request-ID + structured-logging middleware.
func (s *Server) Handler() http.Handler { return s.middleware(s.mux) }

// jsonError writes a {"error": ...} body with the given status.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeMatrix reads and validates a matrix body under the given byte
// limit. Failures are written to w (400 for malformed or invalid, 413
// for oversized) and reported via ok=false.
func (s *Server) decodeMatrix(w http.ResponseWriter, r *http.Request, raw json.RawMessage) (m blockadt.Matrix, total int, ok bool) {
	if err := json.Unmarshal(raw, &m); err != nil {
		jsonError(w, http.StatusBadRequest, "malformed matrix JSON: %v", err)
		return m, 0, false
	}
	// Configs validates every dimension against the registries; its
	// unknown-name errors carry the registered alternatives, which is
	// exactly what a 400 should teach the client. For those the body
	// also breaks the failure out into machine-readable fields, so a
	// client can match on kind/name instead of parsing the message.
	configs, err := m.Configs()
	if err != nil {
		var unknown *blockadt.UnknownNameError
		if errors.As(err, &unknown) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(struct {
				Error      string   `json:"error"`
				Kind       string   `json:"kind"`
				Name       string   `json:"name"`
				Registered []string `json:"registered"`
			}{fmt.Sprintf("invalid matrix: %v", err), unknown.Kind, unknown.Name, unknown.Registered})
			return m, 0, false
		}
		jsonError(w, http.StatusBadRequest, "invalid matrix: %v", err)
		return m, 0, false
	}
	if len(configs) == 0 {
		jsonError(w, http.StatusBadRequest,
			"matrix expanded to 0 configurations: every requested combination was pruned")
		return m, 0, false
	}
	return m, len(configs), true
}

// readBody drains the request body under limit, translating the
// over-limit error to 413.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	raw, err := readAllLimited(w, r, limit)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			jsonError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the configured limit of %d bytes", tooLarge.Limit)
		} else {
			jsonError(w, http.StatusBadRequest, "reading request body: %v", err)
		}
		return nil, false
	}
	return raw, true
}

// parallelism resolves an optional ?parallel=N override.
func (s *Server) parallelism(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.URL.Query().Get("parallel")
	if q == "" {
		return s.cfg.Parallelism, true
	}
	n, err := strconv.Atoi(q)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad parallel %q: want an integer", q)
		return 0, false
	}
	return n, true
}

// register records a sweep for polling, reusing the slot on resubmission
// and evicting the oldest finished sweeps past the registry cap.
func (s *Server) register(id string, m blockadt.Matrix, total int) *sweepState {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sweeps[id]
	if !ok {
		st = &sweepState{ID: id, Matrix: m, Total: total, CreatedAt: now}
		s.sweeps[id] = st
		s.order = append(s.order, id)
		s.evictLocked()
	}
	st.Status = "running"
	st.Completed = 0
	st.Simulated, st.CacheHits, st.Coalesced = 0, 0, 0
	st.Err = ""
	st.UpdatedAt = now
	return st
}

// evictLocked drops the oldest finished sweeps past MaxSweeps. Running
// sweeps are never evicted; their polling state is live.
func (s *Server) evictLocked() {
	for len(s.order) > s.cfg.MaxSweeps {
		evicted := false
		for i, id := range s.order {
			if st := s.sweeps[id]; st != nil && st.Status != "running" {
				delete(s.sweeps, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is running; let the registry run hot
		}
	}
}

// handleSubmit is POST /v1/sweeps: validate, then stream NDJSON results
// in matrix-expansion order as they complete, closing with a summary
// line. The client's disconnect cancels the request context, which tears
// the sweep down promptly (completed results stay persisted).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	m, total, ok := s.decodeMatrix(w, r, raw)
	if !ok {
		return
	}
	parallelism, ok := s.parallelism(w, r)
	if !ok {
		return
	}
	id, err := m.Fingerprint()
	if err != nil { // Configs passed, so this cannot happen; fail loudly anyway
		jsonError(w, http.StatusInternalServerError, "fingerprint: %v", err)
		return
	}

	st := s.register(id, m, total)
	s.inflightSweeps.Add(1)
	defer s.inflightSweeps.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Id", id)
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)

	var census blockadt.Census
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	var matched int
	var ticks int64
	completed := 0
	for res, err := range blockadt.Stream(r.Context(), m, parallelism,
		blockadt.WithRunStore(s.cfg.Store),
		blockadt.WithSingleflight(s.flight),
		blockadt.WithCensus(&census),
		blockadt.WithTracer(s.requestTracer(r.Context()))) {
		if err != nil {
			enc.Encode(map[string]string{"error": err.Error()})
			s.finishSweep(st, &census, completed, "failed", err.Error())
			return
		}
		if err := enc.Encode(res); err != nil {
			// The client went away mid-write; the next iteration's
			// context check tears the sweep down.
			s.finishSweep(st, &census, completed, "failed", "client disconnected")
			return
		}
		completed++
		if res.Match {
			matched++
		}
		ticks += res.Ticks
		s.completed.Add(1)
		s.noteProgress(st, completed)
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(struct {
		Summary SweepSummary `json:"summary"`
	}{SweepSummary{
		ID: id, Total: total, Matched: matched, Ticks: ticks,
		Simulated: census.Simulated(), CacheHits: census.CacheHits(),
		Coalesced: census.Coalesced(), Skipped: census.Skipped(),
	}})
	s.finishSweep(st, &census, completed, "done", "")
}

// noteProgress bumps a sweep's completion counter for pollers.
func (s *Server) noteProgress(st *sweepState, completed int) {
	s.mu.Lock()
	st.Completed = completed
	st.UpdatedAt = s.cfg.Now()
	s.mu.Unlock()
}

// finishSweep folds a finished (or torn down) sweep's census into the
// polling state and the server-lifetime counters.
func (s *Server) finishSweep(st *sweepState, census *blockadt.Census, completed int, status, errMsg string) {
	s.simulated.Add(census.Simulated())
	s.cacheHits.Add(census.CacheHits())
	s.coalesced.Add(census.Coalesced())
	s.mu.Lock()
	st.Status = status
	st.Completed = completed
	st.Simulated = census.Simulated()
	st.CacheHits = census.CacheHits()
	st.Coalesced = census.Coalesced()
	st.Err = errMsg
	st.UpdatedAt = s.cfg.Now()
	s.mu.Unlock()
}

// etagFor is the strong validator of a finished sweep: the matrix
// fingerprint, which already folds in {EngineVersion, root seed, every
// scenario's canonical key and derived seed, metric set} — precisely the
// inputs that make a cached result servable.
func etagFor(id string) string { return `"` + id + `"` }

// handlePoll is GET /v1/sweeps/{id}. A finished sweep carries a strong
// ETag; If-None-Match then turns polling into a free 304 until the
// engine version (and with it the fingerprint) changes.
func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	st, ok := s.sweeps[id]
	var snapshot sweepStatus
	if ok {
		snapshot = sweepStatus{
			ID: st.ID, Status: st.Status, Total: st.Total, Completed: st.Completed,
			Simulated: st.Simulated, CacheHits: st.CacheHits, Coalesced: st.Coalesced,
			Error:     st.Err,
			CreatedAt: st.CreatedAt.UTC().Format(time.RFC3339),
			UpdatedAt: st.UpdatedAt.UTC().Format(time.RFC3339),
		}
	}
	s.mu.Unlock()
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	if snapshot.Status == "done" {
		w.Header().Set("ETag", etagFor(id))
		if matchesETag(r.Header.Get("If-None-Match"), etagFor(id)) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snapshot)
}

// handleReport is GET /v1/sweeps/{id}/report: the canonical sweep
// report, byte-identical to `btadt sweep -json` of the same matrix. The
// report is re-served from the store instead of being buffered per sweep
// — for a finished sweep that is a zero-simulation cache read.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	st, ok := s.sweeps[id]
	var status string
	var m blockadt.Matrix
	if ok {
		status, m = st.Status, st.Matrix
	}
	s.mu.Unlock()
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	if status != "done" {
		jsonError(w, http.StatusConflict, "sweep %q is %s; the report is available once it is done", id, status)
		return
	}
	if matchesETag(r.Header.Get("If-None-Match"), etagFor(id)) {
		w.Header().Set("ETag", etagFor(id))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	parallelism, ok := s.parallelism(w, r)
	if !ok {
		return
	}
	var census blockadt.Census
	rep, err := blockadt.Run(m, parallelism,
		blockadt.WithRunStore(s.cfg.Store),
		blockadt.WithSingleflight(s.flight),
		blockadt.WithCensus(&census),
		blockadt.WithTracer(s.requestTracer(r.Context())))
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "serving report: %v", err)
		return
	}
	s.simulated.Add(census.Simulated())
	s.cacheHits.Add(census.CacheHits())
	s.coalesced.Add(census.Coalesced())
	enc, err := rep.EncodeJSON()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "encoding report: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etagFor(id))
	w.Write(enc)
}

// matchesETag implements the subset of If-None-Match a cache-first
// service needs: "*" or a comma-separated list of (possibly weak)
// validators compared against one strong ETag.
func matchesETag(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, candidate := range splitCSV(header) {
		if candidate == etag || candidate == "W/"+etag {
			return true
		}
	}
	return false
}

// handleHealthz is the liveness probe. The first line is always "ok";
// the build triple follows so a fleet check can tell which binary (and
// which engine version, hence which cache namespace) answered.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bi := blockadt.Build()
	fmt.Fprintln(w, "ok")
	fmt.Fprintln(w, "version:", bi.Version)
	fmt.Fprintln(w, "go:", bi.GoVersion)
	fmt.Fprintln(w, "engine:", bi.Engine)
}

// metricsSnapshot is the /metricsz wire form. Existing fields are
// stable API; observability additions (build, workShards,
// leaseExpirations, latencies) only ever append so old decoders keep
// working.
type metricsSnapshot struct {
	UptimeSeconds      float64                   `json:"uptimeSeconds"`
	ScenarioRuns       uint64                    `json:"scenarioRuns"`
	ScenariosCompleted uint64                    `json:"scenariosCompleted"`
	ScenariosPerSecond float64                   `json:"scenariosPerSecond"`
	Simulated          uint64                    `json:"simulated"`
	CacheHits          uint64                    `json:"cacheHits"`
	Coalesced          uint64                    `json:"coalesced"`
	InflightSweeps     int64                     `json:"inflightSweeps"`
	InflightScenarios  int                       `json:"inflightScenarios"`
	QueueDepth         int                       `json:"queueDepth"`
	Sweeps             int                       `json:"sweeps"`
	Jobs               int                       `json:"jobs"`
	StoreEntries       int                       `json:"storeEntries"`
	Store              blockadt.StoreStats       `json:"store"`
	WorkShards         shardCounts               `json:"workShards"`
	LeaseExpirations   uint64                    `json:"leaseExpirations"`
	Build              blockadt.BuildInfo        `json:"build"`
	Latencies          []blockadt.LatencySummary `json:"latencies,omitempty"`
}

// shardCounts breaks the worker-protocol shards down by state.
// "expired" is the leased-past-TTL subset — still leased on the books,
// but a lease call would hand them to someone else.
type shardCounts struct {
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Expired int `json:"expired"`
	Done    int `json:"done"`
}

// shardCountsLocked tallies every job's shards by state at `now`.
func (s *Server) shardCountsLocked(now time.Time) shardCounts {
	var c shardCounts
	for _, job := range s.jobs {
		for _, sh := range job.shards {
			switch {
			case sh.status == "pending":
				c.Pending++
			case sh.status == "done":
				c.Done++
			case now.After(sh.leaseExpiry):
				c.Expired++
			default:
				c.Leased++
			}
		}
	}
	return c
}

// handleMetricsz is GET /metricsz: the operational counters a load test
// or a dashboard scrapes. ScenarioRuns is the process-wide simulation
// counter (blockadt.ScenarioRuns) — unchanged between two scrapes means
// everything in between was served from cache. The default face is
// JSON; `Accept: text/plain` selects Prometheus exposition v0.0.4 of
// the same snapshot.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.Now()
	uptime := now.Sub(s.started).Seconds()
	completed := s.completed.Load()
	perSecond := 0.0
	if uptime > 0 {
		perSecond = float64(completed) / uptime
	}
	s.mu.Lock()
	sweeps, jobs := len(s.sweeps), len(s.jobs)
	queue := s.queueDepthLocked(now)
	shards := s.shardCountsLocked(now)
	s.mu.Unlock()
	snap := metricsSnapshot{
		UptimeSeconds:      uptime,
		ScenarioRuns:       blockadt.ScenarioRuns(),
		ScenariosCompleted: completed,
		ScenariosPerSecond: perSecond,
		Simulated:          s.simulated.Load(),
		CacheHits:          s.cacheHits.Load(),
		Coalesced:          s.coalesced.Load(),
		InflightSweeps:     s.inflightSweeps.Load(),
		InflightScenarios:  s.flight.Inflight(),
		QueueDepth:         queue,
		Sweeps:             sweeps,
		Jobs:               jobs,
		StoreEntries:       s.cfg.Store.Len(),
		Store:              s.cfg.Store.Stats(),
		WorkShards:         shards,
		LeaseExpirations:   s.leaseExpired.Load(),
		Build:              blockadt.Build(),
		Latencies:          s.lat.Snapshot(),
	}
	if wantsPrometheus(r) {
		writePrometheus(w, snap)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}
