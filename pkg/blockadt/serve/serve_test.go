package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"blockadt/pkg/blockadt"
)

// serveTestMatrix is a small metrics-enabled matrix with pinned
// dimensions, so registrations made by other tests cannot change the
// expansion. RootSeed is distinct per test to keep store keys disjoint
// across the suite's stores (they are per-TempDir anyway — the seed just
// keeps ScenarioRuns deltas attributable).
func serveTestMatrix(rootSeed uint64) blockadt.Matrix {
	return blockadt.Matrix{
		Systems:      []string{"Bitcoin"},
		Links:        []string{blockadt.LinkSync, blockadt.LinkAsync},
		Adversaries:  []string{blockadt.AdvNone, blockadt.AdvSelfish},
		Seeds:        2,
		RootSeed:     rootSeed,
		TargetBlocks: 8,
		Metrics:      []string{"fork_rate", "msgs_delivered"},
	}
}

// newTestServer builds a Server over a fresh temp store and mounts it on
// an httptest.Server.
func newTestServer(t *testing.T, mutate func(*Config)) (*httptest.Server, *Server) {
	t.Helper()
	store, err := blockadt.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: store, Parallelism: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// submitSweep POSTs a matrix and parses the NDJSON stream into results
// plus the trailing summary.
func submitSweep(t *testing.T, base string, m blockadt.Matrix) ([]blockadt.Result, SweepSummary, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(mustJSON(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var results []blockadt.Result
	var summary SweepSummary
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var wrapped struct {
			Summary *SweepSummary `json:"summary"`
			Error   string        `json:"error"`
		}
		if err := json.Unmarshal(line, &wrapped); err == nil && wrapped.Error != "" {
			t.Fatalf("stream error: %s", wrapped.Error)
		}
		if err := json.Unmarshal(line, &wrapped); err == nil && wrapped.Summary != nil {
			summary = *wrapped.Summary
			sawSummary = true
			continue
		}
		var r blockadt.Result
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary line")
	}
	return results, summary, resp
}

// TestSubmitValidation pins the HTTP boundary: unknown names are 400s
// that teach the registered alternatives, malformed JSON is a 400 (not a
// 500), and oversized bodies are 413 with the configured limit.
func TestSubmitValidation(t *testing.T) {
	ts, _ := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 512 })

	post := func(body []byte) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, string(raw)
	}

	bad := serveTestMatrix(1)
	bad.Systems = []string{"Dogecoin"}
	resp, body := post(mustJSON(t, bad))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown system: got %s, want 400 (body %s)", resp.Status, body)
	}
	if !strings.Contains(body, "registered") || !strings.Contains(body, "Bitcoin") {
		t.Fatalf("unknown-system 400 should list registered systems, got %s", body)
	}
	var structured struct {
		Error      string   `json:"error"`
		Kind       string   `json:"kind"`
		Name       string   `json:"name"`
		Registered []string `json:"registered"`
	}
	if err := json.Unmarshal([]byte(body), &structured); err != nil {
		t.Fatalf("unknown-name 400 body is not JSON: %v (body %s)", err, body)
	}
	if structured.Kind != "system" || structured.Name != "Dogecoin" {
		t.Fatalf("unknown-name 400 should carry kind/name fields, got %+v", structured)
	}
	if !slices.Contains(structured.Registered, "Bitcoin") {
		t.Fatalf("unknown-name 400 should list registered systems in a field, got %+v", structured)
	}

	badLink := serveTestMatrix(1)
	badLink.Links = []string{"carrier-pigeon"}
	resp, body = post(mustJSON(t, badLink))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "registered") {
		t.Fatalf("unknown link: got %s body %s, want 400 listing registered links", resp.Status, body)
	}

	resp, body = post([]byte(`{"systems": ["Bitcoin"`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: got %s (body %s), want 400", resp.Status, body)
	}

	resp, body = post([]byte(`[1,2,3]`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-object JSON: got %s (body %s), want 400", resp.Status, body)
	}

	huge := append([]byte(`{"systems": ["`), bytes.Repeat([]byte("x"), 1024)...)
	huge = append(huge, []byte(`"]}`)...)
	resp, body = post(huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %s, want 413", resp.Status)
	}
	if !strings.Contains(body, "512") {
		t.Fatalf("413 should name the configured limit, got %s", body)
	}
}

// TestSubmitCacheFirst is the service's core contract over HTTP: the
// second submission of an identical matrix simulates nothing, streams
// the identical results, and both passes agree with a direct engine run.
func TestSubmitCacheFirst(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	m := serveTestMatrix(31)
	total := matrixTotal(t, m)

	before := blockadt.ScenarioRuns()
	cold, coldSummary, coldResp := submitSweep(t, ts.URL, m)
	if ran := blockadt.ScenarioRuns() - before; ran != uint64(total) {
		t.Fatalf("cold submission simulated %d, want %d", ran, total)
	}
	if coldSummary.Simulated != uint64(total) || coldSummary.CacheHits != 0 {
		t.Fatalf("cold summary: %+v, want %d simulated / 0 cached", coldSummary, total)
	}
	if len(cold) != total {
		t.Fatalf("cold stream yielded %d results, want %d", len(cold), total)
	}
	id := coldResp.Header.Get("X-Sweep-Id")
	if id == "" {
		t.Fatal("submission response carries no X-Sweep-Id")
	}
	wantID, err := m.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if id != wantID {
		t.Fatalf("X-Sweep-Id %q is not the matrix fingerprint %q", id, wantID)
	}

	before = blockadt.ScenarioRuns()
	warm, warmSummary, _ := submitSweep(t, ts.URL, m)
	if ran := blockadt.ScenarioRuns() - before; ran != 0 {
		t.Fatalf("cached submission simulated %d, want 0", ran)
	}
	if warmSummary.CacheHits != uint64(total) || warmSummary.Simulated != 0 {
		t.Fatalf("warm summary: %+v, want %d cached / 0 simulated", warmSummary, total)
	}
	if mustString(t, cold) != mustString(t, warm) {
		t.Fatal("cached stream diverged from the cold stream")
	}
}

func matrixTotal(t *testing.T, m blockadt.Matrix) int {
	t.Helper()
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	return len(configs)
}

func mustString(t *testing.T, v any) string {
	t.Helper()
	return string(mustJSON(t, v))
}

// TestConcurrentIdenticalSubmissions fires 32 concurrent identical
// submissions at one server and asserts each scenario simulated at most
// once — the singleflight + store double-check contract, now across the
// full HTTP stack.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	m := serveTestMatrix(32)
	total := matrixTotal(t, m)

	const clients = 32
	summaries := make([]SweepSummary, clients)
	streams := make([]string, clients)
	before := blockadt.ScenarioRuns()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results, summary, _ := submitSweep(t, ts.URL, m)
			summaries[c] = summary
			streams[c] = mustString(t, results)
		}(c)
	}
	wg.Wait()

	if ran := blockadt.ScenarioRuns() - before; ran != uint64(total) {
		t.Fatalf("%d concurrent submissions simulated %d scenarios, want exactly %d", clients, ran, total)
	}
	var simulated uint64
	for c, s := range summaries {
		simulated += s.Simulated
		if got := s.Simulated + s.CacheHits + s.Coalesced; got != uint64(total) {
			t.Fatalf("client %d summary covers %d of %d scenarios: %+v", c, got, total, s)
		}
		if streams[c] != streams[0] {
			t.Fatalf("client %d stream diverged from client 0", c)
		}
	}
	if simulated != uint64(total) {
		t.Fatalf("summaries claim %d simulations, want %d", simulated, total)
	}
}

// TestPollAndReport walks the poll lifecycle: 404 before submission,
// done + ETag after, 304 on If-None-Match, and a report byte-identical
// to the engine's canonical encoding, served from cache.
func TestPollAndReport(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	m := serveTestMatrix(33)
	id, err := m.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("poll before submission: got %s, want 404", resp.Status)
	}

	submitSweep(t, ts.URL, m)

	resp, err = http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var status sweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Status != "done" || status.Completed != status.Total {
		t.Fatalf("poll after submission: %+v, want done and complete", status)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+id+`"` {
		t.Fatalf("done sweep ETag = %q, want quoted fingerprint", etag)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+id, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional poll: got %s, want 304", resp.Status)
	}

	// The report endpoint serves the canonical encoding without
	// simulating anything.
	want, err := blockadt.Run(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	before := blockadt.ScenarioRuns()
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %s: %s", resp.Status, got)
	}
	if string(got) != string(wantJSON) {
		t.Fatal("served report is not byte-identical to the engine's canonical encoding")
	}
	if ran := blockadt.ScenarioRuns() - before; ran != 0 {
		t.Fatalf("serving the report simulated %d scenarios, want 0", ran)
	}
}

// TestWorkerShardedSweep runs the whole distributed path in-process: a
// 2-shard job, two idle-exit workers with their own local stores, and a
// final report served from the coordinator's merged store — byte-equal
// to a single-machine run and simulated exactly once across the fleet.
func TestWorkerShardedSweep(t *testing.T) {
	ts, srv := newTestServer(t, nil)
	m := serveTestMatrix(34)
	total := matrixTotal(t, m)

	resp, err := http.Post(ts.URL+"/v1/work", "application/json",
		bytes.NewReader(mustJSON(t, enqueueRequest{Matrix: mustJSON(t, m), Shards: 2})))
	if err != nil {
		t.Fatal(err)
	}
	var job jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("enqueue: got %s, want 201", resp.Status)
	}
	if job.Shards != 2 || job.Status != "running" {
		t.Fatalf("fresh job: %+v", job)
	}

	// Re-enqueueing is idempotent: same job, 200.
	resp, err = http.Post(ts.URL+"/v1/work", "application/json",
		bytes.NewReader(mustJSON(t, enqueueRequest{Matrix: mustJSON(t, m), Shards: 2})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-enqueue: got %s, want 200", resp.Status)
	}

	before := blockadt.ScenarioRuns()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		store, err := blockadt.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		w := &Worker{
			Coordinator: ts.URL, Store: store, Parallelism: 2,
			Name: fmt.Sprintf("w%d", i), IdleExit: true, Poll: 10 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(t.Context()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if ran := blockadt.ScenarioRuns() - before; ran != uint64(total) {
		t.Fatalf("worker fleet simulated %d scenarios, want exactly %d", ran, total)
	}

	resp, err = http.Get(ts.URL + "/v1/work/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.Status != "done" || job.Done != 2 {
		t.Fatalf("job after workers: %+v, want done 2/2", job)
	}

	// The coordinator's store now covers the full matrix: submitting the
	// unsharded sweep is pure cache, and its stream matches a direct run.
	before = blockadt.ScenarioRuns()
	_, summary, _ := submitSweep(t, ts.URL, m)
	if ran := blockadt.ScenarioRuns() - before; ran != 0 {
		t.Fatalf("post-merge submission simulated %d, want 0", ran)
	}
	if summary.CacheHits != uint64(total) {
		t.Fatalf("post-merge summary: %+v, want %d cache hits", summary, total)
	}
	want, err := blockadt.Run(m, 2, blockadt.WithRunStore(srv.cfg.Store))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	id, _ := m.Fingerprint()
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != string(wantJSON) {
		t.Fatal("merged-store report diverged from a single-machine run")
	}
}

// TestWorkUploadValidation rejects mis-addressed and partial uploads:
// envelopes outside the shard's key set are 400s, as is an upload that
// does not cover the shard, and nothing from a rejected upload merges.
func TestWorkUploadValidation(t *testing.T) {
	ts, srv := newTestServer(t, nil)
	m := serveTestMatrix(35)

	resp, err := http.Post(ts.URL+"/v1/work", "application/json",
		bytes.NewReader(mustJSON(t, enqueueRequest{Matrix: mustJSON(t, m), Shards: 2})))
	if err != nil {
		t.Fatal(err)
	}
	var job jobStatus
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()

	complete := func(shard int, envs []Envelope) (*http.Response, string) {
		t.Helper()
		url := fmt.Sprintf("%s/v1/work/%s/shards/%d/complete", ts.URL, job.ID, shard)
		resp, err := http.Post(url, "application/json", bytes.NewReader(mustJSON(t, envs)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, string(raw)
	}

	resp2, body := complete(0, []Envelope{{Key: "not-a-real-key", Data: json.RawMessage(`{}`)}})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign key upload: got %s (%s), want 400", resp2.Status, body)
	}

	shard0, err := m.Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := shard0.StoreKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 2 {
		t.Skipf("shard 0 has %d keys; need >= 2 for a partial upload", len(keys))
	}
	resp2, body = complete(0, []Envelope{{Key: keys[0], Data: json.RawMessage(`{}`)}})
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(body, "covers") {
		t.Fatalf("partial upload: got %s (%s), want 400 naming coverage", resp2.Status, body)
	}
	if srv.cfg.Store.Has(keys[0]) {
		t.Fatal("rejected upload still merged an envelope into the store")
	}

	resp2, body = complete(7, nil)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown shard: got %s (%s), want 404", resp2.Status, body)
	}
}

// TestLeaseExpiry pins re-leasing: a shard leased by a worker that never
// completes is offered to the next caller once its TTL passes, and not
// before.
func TestLeaseExpiry(t *testing.T) {
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	ts, _ := newTestServer(t, func(c *Config) {
		c.LeaseTTL = time.Minute
		c.Now = now
	})
	m := serveTestMatrix(36)
	resp, err := http.Post(ts.URL+"/v1/work", "application/json",
		bytes.NewReader(mustJSON(t, enqueueRequest{Matrix: mustJSON(t, m), Shards: 1})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	lease := func() (Lease, int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/work/lease", "application/json",
			bytes.NewReader(mustJSON(t, leaseRequest{Worker: "t"})))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var l Lease
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return l, resp.StatusCode
	}

	first, code := lease()
	if code != http.StatusOK {
		t.Fatalf("first lease: got %d, want 200", code)
	}
	if _, code = lease(); code != http.StatusNoContent {
		t.Fatalf("second lease inside the TTL: got %d, want 204", code)
	}
	advance(2 * time.Minute)
	second, code := lease()
	if code != http.StatusOK {
		t.Fatalf("lease after expiry: got %d, want 200", code)
	}
	if second.Job != first.Job || second.Shard != first.Shard {
		t.Fatalf("expired lease handed out a different shard: %+v vs %+v", second, first)
	}

	// The takeover is visible in /metricsz: one recorded expiration, and
	// the shard counted as leased again (not expired) under the new TTL.
	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.LeaseExpirations != 1 {
		t.Fatalf("leaseExpirations = %d, want 1", snap.LeaseExpirations)
	}
	if snap.WorkShards.Leased != 1 || snap.WorkShards.Expired != 0 {
		t.Fatalf("workShards after re-lease: %+v, want 1 leased / 0 expired", snap.WorkShards)
	}

	// Left alone past the new TTL, the shard shows up as expired.
	advance(2 * time.Minute)
	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.WorkShards.Expired != 1 || snap.WorkShards.Leased != 0 {
		t.Fatalf("workShards past TTL: %+v, want 1 expired / 0 leased", snap.WorkShards)
	}
}

// TestMetricsz spot-checks the operational counters after a cold and a
// cached pass.
func TestMetricsz(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	m := serveTestMatrix(37)
	total := uint64(matrixTotal(t, m))

	submitSweep(t, ts.URL, m)
	submitSweep(t, ts.URL, m)

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if snap.Simulated != total {
		t.Fatalf("metricsz simulated = %d, want %d", snap.Simulated, total)
	}
	if snap.CacheHits != total {
		t.Fatalf("metricsz cacheHits = %d, want %d", snap.CacheHits, total)
	}
	if snap.ScenariosCompleted != 2*total {
		t.Fatalf("metricsz scenariosCompleted = %d, want %d", snap.ScenariosCompleted, 2*total)
	}
	if snap.StoreEntries < int(total) {
		t.Fatalf("metricsz storeEntries = %d, want >= %d", snap.StoreEntries, total)
	}
	if snap.Store.Puts != total {
		t.Fatalf("metricsz store.puts = %d, want %d", snap.Store.Puts, total)
	}
	if snap.InflightSweeps != 0 || snap.InflightScenarios != 0 || snap.QueueDepth != 0 {
		t.Fatalf("idle gauges nonzero: %+v", snap)
	}
	if snap.Build.Engine != blockadt.EngineVersion || snap.Build.GoVersion == "" {
		t.Fatalf("metricsz build info incomplete: %+v", snap.Build)
	}
	// Both passes fold into the latency histograms: the total phase has
	// seen every scenario, simulated and cached alike.
	var sawTotal bool
	for _, l := range snap.Latencies {
		if l.Phase == "total" {
			sawTotal = true
			if l.Count <= 0 || l.P50NS <= 0 {
				t.Fatalf("degenerate latency summary: %+v", l)
			}
		}
	}
	if !sawTotal {
		t.Fatalf("metricsz latencies carry no total phase: %+v", snap.Latencies)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if resp.StatusCode != http.StatusOK || lines[0] != "ok" {
		t.Fatalf("healthz: %s %q", resp.Status, body)
	}
	if len(lines) < 4 || !strings.Contains(string(body), "engine: "+blockadt.EngineVersion) {
		t.Fatalf("healthz should report the build triple after ok, got %q", body)
	}
}
