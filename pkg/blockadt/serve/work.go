package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"blockadt/pkg/blockadt"
)

// The worker protocol distributes one sweep across machines with the
// run store's content addressing as the transport invariant:
//
//  1. a client enqueues {matrix, shards:N} at POST /v1/work; the
//     coordinator expands every shard's expected store keys up front
//     (shards fully covered by its store are born done);
//  2. workers lease shards at POST /v1/work/lease — each lease carries
//     the already-sharded matrix and expires after LeaseTTL, so a dead
//     worker's shard is re-leased instead of wedging the job;
//  3. a worker sweeps its shard against its own local store, then
//     uploads the shard's {key, data} envelopes to
//     POST /v1/work/{id}/shards/{i}/complete;
//  4. the coordinator validates every envelope against the shard's
//     expected key set and Puts it into the shared store — the HTTP
//     analogue of merging content-addressed stores by file copy.
//
// Once every shard lands, a plain GET /v1/sweeps report (or any sweep
// submission of the full matrix) is served entirely from cache, and is
// byte-identical to a single-machine run.

// Envelope is the unit of shard-result upload: one scenario's store key
// and its canonical Result JSON, exactly as the run store envelopes it
// on disk.
type Envelope struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// shardState tracks one shard of a job through pending → leased → done.
type shardState struct {
	status      string // "pending", "leased", "done"
	worker      string
	leaseExpiry time.Time
	expected    map[string]bool // store keys this shard must cover
	matrix      blockadt.Matrix // the pre-sharded matrix a lease hands out
}

// shardJob is one enqueued sharded sweep.
type shardJob struct {
	id        string
	matrix    blockadt.Matrix
	shards    []*shardState
	createdAt time.Time
}

func (j *shardJob) doneLocked() int {
	done := 0
	for _, sh := range j.shards {
		if sh.status == "done" {
			done++
		}
	}
	return done
}

// jobStatus is the wire form of GET /v1/work/{id}.
type jobStatus struct {
	ID        string   `json:"id"`
	Status    string   `json:"status"` // "running" or "done"
	Shards    int      `json:"shards"`
	Done      int      `json:"done"`
	States    []string `json:"states"`
	CreatedAt string   `json:"createdAt"`
}

func (j *shardJob) statusLocked() jobStatus {
	st := jobStatus{
		ID:        j.id,
		Shards:    len(j.shards),
		Done:      j.doneLocked(),
		CreatedAt: j.createdAt.UTC().Format(time.RFC3339),
	}
	st.States = make([]string, len(j.shards))
	for i, sh := range j.shards {
		st.States[i] = sh.status
	}
	if st.Done == st.Shards {
		st.Status = "done"
	} else {
		st.Status = "running"
	}
	return st
}

// enqueueRequest is the POST /v1/work body.
type enqueueRequest struct {
	Matrix json.RawMessage `json:"matrix"`
	Shards int             `json:"shards"`
}

// handleEnqueue is POST /v1/work: validate the matrix, partition it into
// N deterministic shards, and precompute each shard's expected store-key
// set. Enqueueing is idempotent on (fingerprint, shard count): resubmits
// return the existing job. Shards already fully covered by the
// coordinator's store are marked done on arrival — the cache-first rule
// applied to distribution.
func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	var req enqueueRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		jsonError(w, http.StatusBadRequest, "malformed work request JSON: %v", err)
		return
	}
	if req.Shards < 1 {
		jsonError(w, http.StatusBadRequest, "shards must be >= 1, got %d", req.Shards)
		return
	}
	if len(req.Matrix) == 0 {
		jsonError(w, http.StatusBadRequest, "work request is missing the matrix")
		return
	}
	m, _, ok := s.decodeMatrix(w, r, req.Matrix)
	if !ok {
		return
	}
	if m.ShardCount > 1 {
		jsonError(w, http.StatusBadRequest,
			"work matrices must be unsharded (the coordinator shards them); got shard %d/%d",
			m.ShardIndex, m.ShardCount)
		return
	}
	fp, err := m.Fingerprint()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "fingerprint: %v", err)
		return
	}
	id := fp + "." + strconv.Itoa(req.Shards)

	shards := make([]*shardState, req.Shards)
	for i := range shards {
		sub, err := m.Shard(i, req.Shards)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, "sharding: %v", err)
			return
		}
		keys, err := sub.StoreKeys()
		if err != nil {
			jsonError(w, http.StatusInternalServerError, "shard keys: %v", err)
			return
		}
		expected := make(map[string]bool, len(keys))
		covered := true
		for _, k := range keys {
			expected[k] = true
			if !s.cfg.Store.Has(k) {
				covered = false
			}
		}
		st := &shardState{status: "pending", expected: expected, matrix: sub}
		if covered {
			st.status = "done"
		}
		shards[i] = st
	}

	s.mu.Lock()
	job, existed := s.jobs[id]
	if !existed {
		job = &shardJob{id: id, matrix: m, shards: shards, createdAt: s.cfg.Now()}
		s.jobs[id] = job
		s.jobIDs = append(s.jobIDs, id)
	}
	status := job.statusLocked()
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	if existed {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(status)
}

// handleJobStatus is GET /v1/work/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	var status jobStatus
	if ok {
		status = job.statusLocked()
	}
	s.mu.Unlock()
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(status)
}

// leaseRequest is the POST /v1/work/lease body. Worker is a free-form
// identity used only for observability.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// Lease is the coordinator's answer to a successful lease: which shard
// of which job, the pre-sharded matrix to sweep, and how long the worker
// has before the shard is offered to someone else.
type Lease struct {
	Job        string          `json:"job"`
	Shard      int             `json:"shard"`
	Shards     int             `json:"shards"`
	Matrix     blockadt.Matrix `json:"matrix"`
	TTLSeconds int64           `json:"ttlSeconds"`
}

// handleLease is POST /v1/work/lease: hand the oldest available shard
// (pending, or leased but expired) to the calling worker, or 204 when
// there is no work. Leases expire after LeaseTTL so a crashed worker's
// shard re-enters the pool instead of wedging the job.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	var req leaseRequest
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			jsonError(w, http.StatusBadRequest, "malformed lease request JSON: %v", err)
			return
		}
	}
	now := s.cfg.Now()
	s.mu.Lock()
	var lease *Lease
	for _, id := range s.jobIDs {
		job := s.jobs[id]
		for i, sh := range job.shards {
			expired := sh.status == "leased" && now.After(sh.leaseExpiry)
			if sh.status != "pending" && !expired {
				continue
			}
			if expired {
				// The previous holder sat past its TTL; count and log the
				// takeover so a flaky worker fleet is visible in /metricsz.
				s.leaseExpired.Add(1)
				s.log.Warn("lease expired, re-leasing shard",
					"job", job.id, "shard", i,
					"previousWorker", sh.worker, "newWorker", req.Worker,
					"overdue", now.Sub(sh.leaseExpiry).String())
			}
			sh.status = "leased"
			sh.worker = req.Worker
			sh.leaseExpiry = now.Add(s.cfg.LeaseTTL)
			lease = &Lease{
				Job: job.id, Shard: i, Shards: len(job.shards),
				Matrix:     sh.matrix,
				TTLSeconds: int64(s.cfg.LeaseTTL / time.Second),
			}
			break
		}
		if lease != nil {
			break
		}
	}
	s.mu.Unlock()
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(lease)
}

// handleComplete is POST /v1/work/{id}/shards/{index}/complete: a worker
// uploads its shard's envelopes. Every envelope key must belong to the
// shard's expected set and the upload must cover it entirely — partial
// or mis-addressed uploads are rejected whole, so a shard is either done
// with all its results merged or still leased. Completion is idempotent:
// re-uploading a done shard re-validates and overwrites identical
// content-addressed entries.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	index, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad shard index %q", r.PathValue("index"))
		return
	}
	raw, ok := readBody(w, r, s.cfg.MaxUploadBytes)
	if !ok {
		return
	}
	var envelopes []Envelope
	if err := json.Unmarshal(raw, &envelopes); err != nil {
		jsonError(w, http.StatusBadRequest, "malformed envelope upload JSON: %v", err)
		return
	}

	s.mu.Lock()
	job, ok := s.jobs[id]
	var sh *shardState
	if ok && index >= 0 && index < len(job.shards) {
		sh = job.shards[index]
	}
	s.mu.Unlock()
	if sh == nil {
		jsonError(w, http.StatusNotFound, "unknown job %q or shard %d", id, index)
		return
	}

	// Validate before the first Put: either the whole upload merges or
	// none of it does.
	seen := make(map[string]bool, len(envelopes))
	for _, env := range envelopes {
		if !sh.expected[env.Key] {
			jsonError(w, http.StatusBadRequest,
				"envelope key does not belong to shard %d of job %s: %q", index, id, env.Key)
			return
		}
		if len(env.Data) == 0 {
			jsonError(w, http.StatusBadRequest, "envelope for key %q has no data", env.Key)
			return
		}
		seen[env.Key] = true
	}
	var missing []string
	for k := range sh.expected {
		if !seen[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		jsonError(w, http.StatusBadRequest,
			"upload covers %d of %d expected keys for shard %d (missing e.g. %q)",
			len(seen), len(sh.expected), index, missing[0])
		return
	}

	for _, env := range envelopes {
		if err := s.cfg.Store.Put(env.Key, env.Data); err != nil {
			jsonError(w, http.StatusInternalServerError, "merging envelope %q: %v", env.Key, err)
			return
		}
	}
	if err := s.cfg.Store.Flush(); err != nil {
		jsonError(w, http.StatusInternalServerError, "flushing store: %v", err)
		return
	}
	s.completed.Add(uint64(len(envelopes)))

	s.mu.Lock()
	sh.status = "done"
	status := job.statusLocked()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(status)
}

// queueDepthLocked counts shards a lease call would currently hand out.
func (s *Server) queueDepthLocked(now time.Time) int {
	depth := 0
	for _, job := range s.jobs {
		for _, sh := range job.shards {
			if sh.status == "pending" || (sh.status == "leased" && now.After(sh.leaseExpiry)) {
				depth++
			}
		}
	}
	return depth
}

// readAllLimited drains the body under an http.MaxBytesReader so an
// over-limit request surfaces as *http.MaxBytesError.
func readAllLimited(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	return io.ReadAll(r.Body)
}

// splitCSV splits a comma-separated header value, trimming whitespace
// and dropping empties.
func splitCSV(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
