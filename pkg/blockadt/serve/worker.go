package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"blockadt/pkg/blockadt"
)

// Worker is the other half of the worker protocol: a lease loop that
// pulls shards from a coordinator, sweeps them against a local run
// store, and uploads the resulting envelopes. Several workers pointed at
// one coordinator fan a sweep out across machines; the merged store then
// serves the full matrix byte-identically to a single-machine run.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8423".
	Coordinator string
	// Store is the worker's local run store. Scenarios it already holds
	// are cache hits even on leased work.
	Store *blockadt.RunStore
	// Parallelism is the per-shard pool size (<1 selects NumCPU).
	Parallelism int
	// Name identifies the worker in leases (observability only).
	Name string
	// IdleExit makes Run return nil the first time the coordinator has
	// no work, instead of polling forever — the batch/CI mode.
	IdleExit bool
	// Poll is the idle re-poll interval (default 2s).
	Poll time.Duration
	// Client overrides the HTTP client (default http.DefaultClient —
	// note uploads and leases are long-poll-free, so default timeouts
	// are fine).
	Client *http.Client
	// Logf, when set, receives one line per lease/upload.
	Logf func(format string, args ...any)
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run leases and completes shards until the context is cancelled, an
// error occurs, or (with IdleExit) the coordinator runs dry. A cancelled
// context returns ctx.Err() unless the worker was already idle.
func (w *Worker) Run(ctx context.Context) error {
	if w.Store == nil {
		return errors.New("serve: Worker.Store is required")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 2 * time.Second
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, ok, err := w.lease(ctx)
		if err != nil {
			return err
		}
		if !ok {
			if w.IdleExit {
				w.logf("no work; exiting")
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		if err := w.runLease(ctx, lease); err != nil {
			return err
		}
	}
}

// lease asks the coordinator for one shard. ok=false means no work.
func (w *Worker) lease(ctx context.Context) (Lease, bool, error) {
	body, _ := json.Marshal(leaseRequest{Worker: w.Name})
	resp, err := w.post(ctx, w.Coordinator+"/v1/work/lease", body)
	if err != nil {
		return Lease{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return Lease{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return Lease{}, false, httpError("leasing work", resp)
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		return Lease{}, false, fmt.Errorf("serve: decoding lease: %w", err)
	}
	return lease, true, nil
}

// runLease sweeps the leased shard locally and uploads its envelopes.
func (w *Worker) runLease(ctx context.Context, lease Lease) error {
	w.logf("leased job %s shard %d/%d", lease.Job, lease.Shard, lease.Shards)
	var census blockadt.Census
	if _, err := blockadt.Run(lease.Matrix, w.Parallelism,
		blockadt.WithRunStore(w.Store), blockadt.WithCensus(&census)); err != nil {
		return fmt.Errorf("serve: sweeping shard %d of job %s: %w", lease.Shard, lease.Job, err)
	}
	keys, err := lease.Matrix.StoreKeys()
	if err != nil {
		return fmt.Errorf("serve: shard keys: %w", err)
	}
	envelopes := make([]Envelope, 0, len(keys))
	for _, k := range keys {
		data, ok, err := w.Store.Get(k)
		if err != nil || !ok {
			return fmt.Errorf("serve: local store is missing %q after the sweep (err=%v)", k, err)
		}
		envelopes = append(envelopes, Envelope{Key: k, Data: data})
	}
	body, err := json.Marshal(envelopes)
	if err != nil {
		return err
	}
	url := w.Coordinator + "/v1/work/" + lease.Job + "/shards/" + strconv.Itoa(lease.Shard) + "/complete"
	resp, err := w.post(ctx, url, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("completing shard", resp)
	}
	io.Copy(io.Discard, resp.Body)
	w.logf("completed job %s shard %d: %d envelopes (%d simulated, %d cached)",
		lease.Job, lease.Shard, len(envelopes), census.Simulated(), census.CacheHits())
	return nil
}

func (w *Worker) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.client().Do(req)
}

// httpError folds a non-2xx response (and its error body, if JSON) into
// a readable error.
func httpError(doing string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return fmt.Errorf("serve: %s: %s (%s)", doing, body.Error, resp.Status)
	}
	return fmt.Errorf("serve: %s: %s", doing, resp.Status)
}
