package blockadt

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// hookTestMatrix is a small metrics-enabled matrix with pinned systems
// (registrations made by other tests cannot change the expansion).
func hookTestMatrix() Matrix {
	return Matrix{
		Systems:      []string{"Bitcoin"},
		Links:        []string{LinkSync, LinkAsync},
		Adversaries:  []string{AdvNone, AdvSelfish},
		Seeds:        2,
		RootSeed:     23,
		TargetBlocks: 8,
		Metrics:      []string{"fork_rate", "msgs_delivered"},
	}
}

// TestWithRunStoreSharedHandle pins the shared-handle contract behind a
// long-running service: two sweeps through one RunStore accumulate
// hit/miss/put statistics across calls, the second is served entirely
// from cache, and the per-sweep Census agrees with the global
// ScenarioRuns counter.
func TestWithRunStoreSharedHandle(t *testing.T) {
	m := hookTestMatrix()
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(len(configs))
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	var first Census
	before := ScenarioRuns()
	if _, err := Run(m, 2, WithRunStore(store), WithCensus(&first)); err != nil {
		t.Fatal(err)
	}
	if ran := ScenarioRuns() - before; ran != total {
		t.Fatalf("cold run simulated %d, want %d", ran, total)
	}
	if first.Simulated() != total || first.CacheHits() != 0 {
		t.Fatalf("cold census: simulated %d cacheHits %d, want %d/0",
			first.Simulated(), first.CacheHits(), total)
	}

	var second Census
	before = ScenarioRuns()
	if _, err := Run(m, 2, WithRunStore(store), WithCensus(&second)); err != nil {
		t.Fatal(err)
	}
	if ran := ScenarioRuns() - before; ran != 0 {
		t.Fatalf("cached run simulated %d, want 0", ran)
	}
	if second.CacheHits() != total || second.Simulated() != 0 {
		t.Fatalf("cached census: cacheHits %d simulated %d, want %d/0",
			second.CacheHits(), second.Simulated(), total)
	}

	stats := store.Stats()
	if stats.Puts != total {
		t.Fatalf("stats.Puts = %d, want %d", stats.Puts, total)
	}
	if stats.Hits != total || stats.Misses != total {
		t.Fatalf("stats hits/misses = %d/%d, want %d/%d (one miss then one hit per scenario)",
			stats.Hits, stats.Misses, total, total)
	}
}

// TestSingleflightConcurrentIdenticalSweeps is the engine half of the
// service's concurrency contract: many concurrent identical sweeps over
// one store and one flight group simulate each scenario EXACTLY once —
// the store dedups across time, the flight group dedups in-flight, and
// the leader's persist-before-release plus the in-flight double-check
// closes the window between them.
func TestSingleflightConcurrentIdenticalSweeps(t *testing.T) {
	m := hookTestMatrix()
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(len(configs))
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flight := NewSingleflight()

	const clients = 32
	censuses := make([]Census, clients)
	reports := make([]*Report, clients)
	before := ScenarioRuns()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rep, err := Run(m, 2, WithRunStore(store), WithSingleflight(flight), WithCensus(&censuses[c]))
			if err != nil {
				t.Error(err)
				return
			}
			reports[c] = rep
		}(c)
	}
	wg.Wait()

	if ran := ScenarioRuns() - before; ran != total {
		t.Fatalf("%d concurrent identical sweeps simulated %d scenarios, want exactly %d", clients, ran, total)
	}
	var simulated uint64
	for c := range censuses {
		cen := &censuses[c]
		simulated += cen.Simulated()
		if got := cen.CacheHits() + cen.Simulated() + cen.Coalesced(); got != total {
			t.Fatalf("client %d census does not cover the matrix: %d of %d", c, got, total)
		}
	}
	if simulated != total {
		t.Fatalf("censuses claim %d simulations, want %d", simulated, total)
	}
	// Every client saw the identical canonical report.
	want, err := reports[0].EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < clients; c++ {
		got, err := reports[c].EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("client %d report diverged from client 0", c)
		}
	}
	if flight.Inflight() != 0 {
		t.Fatalf("flight group still tracks %d keys after all sweeps finished", flight.Inflight())
	}
}

// TestMatrixFingerprint pins the sweep-identity contract the serving
// layer keys requests on: deterministic, sensitive to every dimension
// that changes a store key, and failing on the same inputs Configs does.
func TestMatrixFingerprint(t *testing.T) {
	m := hookTestMatrix()
	a, err := m.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("fingerprint is not deterministic")
	}

	seed := m
	seed.RootSeed++
	if fp, _ := seed.Fingerprint(); fp == a {
		t.Fatal("fingerprint ignores the root seed")
	}
	metrics := m
	metrics.Metrics = nil
	if fp, _ := metrics.Fingerprint(); fp == a {
		t.Fatal("fingerprint ignores the metric set")
	}

	keys, err := m.StoreKeys()
	if err != nil {
		t.Fatal(err)
	}
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(configs) {
		t.Fatalf("StoreKeys returned %d keys for %d scenarios", len(keys), len(configs))
	}

	bad := m
	bad.Systems = []string{"Dogecoin"}
	if _, err := bad.Fingerprint(); err == nil {
		t.Fatal("fingerprint accepted an unregistered system")
	}
}

// TestStreamEarlyBreakTeardown is the prompt-teardown regression: a
// consumer that breaks out of Stream leaks no goroutines (queued
// scenarios are skipped, in-flight ones finish and their goroutines
// exit) and the store still holds every completed write, so the next
// sweep resumes from them.
func TestStreamEarlyBreakTeardown(t *testing.T) {
	dir := t.TempDir()
	m := streamTestMatrix()
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	before := ScenarioRuns()
	consumed := 0
	for _, err := range Stream(context.Background(), m, 4, WithStore(dir)) {
		if err != nil {
			t.Fatal(err)
		}
		consumed++
		if consumed == 3 {
			break
		}
	}

	// In-flight scenarios finish on their workers; everything queued
	// behind them observes the cancelled pool and skips. Within a
	// bounded settling window the goroutine count must return to the
	// pre-stream baseline.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("stream teardown leaked goroutines: %d running, baseline %d", g, baseline)
	}
	// Prompt teardown: the break must have stopped the sweep well short
	// of the full matrix (at most the pool's admission window past the
	// consumed results can ever have started).
	if ran := ScenarioRuns() - before; ran >= uint64(len(configs)) {
		t.Fatalf("broken-out stream still simulated the whole matrix (%d of %d)", ran, len(configs))
	}

	// Completed writes persisted: a reopened store serves at least the
	// three consumed results.
	cached, total, err := StorePreflight(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if cached < consumed {
		t.Fatalf("store holds %d of %d results after the break, want at least %d", cached, total, consumed)
	}
}
