package blockadt

import (
	"bytes"
	"testing"
)

func shardTestMatrix() Matrix {
	return Matrix{
		Systems:      []string{"Bitcoin", "Ethereum", "Hyperledger", "Algorand"},
		Links:        []string{LinkSync, LinkAsync, LinkPsync},
		Adversaries:  []string{AdvNone, AdvSelfish},
		Ns:           []int{4, 8},
		Seeds:        3,
		RootSeed:     42,
		TargetBlocks: 8,
	}
}

func keySet(t *testing.T, m Matrix) map[string]bool {
	t.Helper()
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(configs))
	for _, c := range configs {
		if out[c.Key()] {
			t.Fatalf("duplicate scenario %s", c.Key())
		}
		out[c.Key()] = true
	}
	return out
}

// TestShardPartitionProperty is the satellite property test: for several
// shard counts, the shards are pairwise disjoint and their union is
// exactly the unsharded expansion.
func TestShardPartitionProperty(t *testing.T) {
	m := shardTestMatrix()
	full := keySet(t, m)
	if len(full) < 20 {
		t.Fatalf("matrix too small for a meaningful partition test: %d scenarios", len(full))
	}
	for _, count := range []int{1, 2, 3, 5, 8} {
		union := map[string]bool{}
		for i := 0; i < count; i++ {
			shard, err := m.Shard(i, count)
			if err != nil {
				t.Fatal(err)
			}
			for key := range keySet(t, shard) {
				if union[key] {
					t.Fatalf("count=%d: scenario %s appears in two shards", count, key)
				}
				union[key] = true
			}
		}
		if len(union) != len(full) {
			t.Fatalf("count=%d: union has %d scenarios, full matrix %d", count, len(union), len(full))
		}
		for key := range union {
			if !full[key] {
				t.Fatalf("count=%d: union scenario %s not in full matrix", count, key)
			}
		}
	}
}

// TestShardAssignmentStableUnderReordering pins that a scenario's shard
// depends only on its canonical key: permuting every matrix dimension
// list leaves each shard's key set unchanged.
func TestShardAssignmentStableUnderReordering(t *testing.T) {
	m := shardTestMatrix()
	permuted := m
	permuted.Systems = []string{"Algorand", "Hyperledger", "Bitcoin", "Ethereum"}
	permuted.Links = []string{LinkPsync, LinkAsync, LinkSync}
	permuted.Adversaries = []string{AdvSelfish, AdvNone}
	permuted.Ns = []int{8, 4}

	for i := 0; i < 3; i++ {
		a, err := m.Shard(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := permuted.Shard(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		ka, kb := keySet(t, a), keySet(t, b)
		if len(ka) != len(kb) {
			t.Fatalf("shard %d: %d vs %d scenarios after permutation", i, len(ka), len(kb))
		}
		for key := range ka {
			if !kb[key] {
				t.Fatalf("shard %d: scenario %s migrated shards under reordering", i, key)
			}
		}
	}
}

// TestShardValidation pins the failure modes: bad indices fail loudly in
// both Shard and Configs.
func TestShardValidation(t *testing.T) {
	m := shardTestMatrix()
	if _, err := m.Shard(0, 0); err == nil {
		t.Error("Shard accepted count 0")
	}
	if _, err := m.Shard(2, 2); err == nil {
		t.Error("Shard accepted index == count")
	}
	if _, err := m.Shard(-1, 2); err == nil {
		t.Error("Shard accepted a negative index")
	}
	bad := m
	bad.ShardIndex, bad.ShardCount = 5, 2
	if _, err := bad.Configs(); err == nil {
		t.Error("Configs accepted an out-of-range shard index")
	}
	neg := m
	neg.ShardCount = -1
	if _, err := neg.Configs(); err == nil {
		t.Error("Configs accepted a negative shard count")
	}
}

// TestMergeShardsByteIdentical is the acceptance criterion: run the two
// shards of a matrix separately, Merge them (in scrambled order), and
// the merged report's canonical JSON is byte-identical to the unsharded
// sweep's.
func TestMergeShardsByteIdentical(t *testing.T) {
	m := shardTestMatrix()
	m.TargetBlocks = 6 // keep the double sweep fast
	whole, err := Run(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	wholeJSON, err := whole.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}

	var shards []*Report
	for i := 0; i < 2; i++ {
		sm, err := m.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(sm, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Total == 0 || rep.Total == whole.Total {
			t.Fatalf("shard %d expanded to %d of %d scenarios — not a real partition", i, rep.Total, whole.Total)
		}
		shards = append(shards, rep)
	}

	merged, err := Merge(m, shards[1], shards[0]) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	mergedJSON, err := merged.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wholeJSON, mergedJSON) {
		t.Fatal("merged shard reports are not byte-identical to the unsharded sweep")
	}
}

// TestMergeFailsLoudly pins Merge's error modes: a missing shard, a
// foreign scenario, a root-seed mismatch and a conflicting duplicate.
func TestMergeFailsLoudly(t *testing.T) {
	m := shardTestMatrix()
	m.TargetBlocks = 6
	s0m, _ := m.Shard(0, 2)
	s1m, _ := m.Shard(1, 2)
	s0, err := Run(s0m, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Run(s1m, 2)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Merge(m, s0); err == nil {
		t.Error("Merge accepted a missing shard")
	}

	foreign := m
	foreign.RootSeed = 7
	f0m, _ := foreign.Shard(0, 2)
	f0, err := Run(f0m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(m, f0, s1); err == nil {
		t.Error("Merge accepted a shard swept under a different root seed")
	}

	// A duplicated but agreeing shard is fine (overlapping stores).
	if _, err := Merge(m, s0, s1, s0); err != nil {
		t.Errorf("Merge rejected an agreeing overlap: %v", err)
	}

	// A conflicting duplicate is not.
	tampered := *s0
	tampered.Results = append([]Result(nil), s0.Results...)
	tampered.Results[0].Forks++
	if _, err := Merge(m, s0, s1, &tampered); err == nil {
		t.Error("Merge accepted shards that disagree about a scenario")
	}

	// A scenario outside the matrix is an error too.
	narrower := m
	narrower.Ns = []int{4}
	if _, err := Merge(narrower, s0, s1); err == nil {
		t.Error("Merge accepted results outside the matrix")
	}
}
