package blockadt

import (
	"fmt"

	"blockadt/internal/chains"
	"blockadt/internal/fairness"
)

// Simulate runs a full network simulation of a registered system: WithN
// processes race to WithBlocks committed blocks over the WithLink
// communication model, optionally under a WithAdversary fault model. The
// zero-valued options inherit the repository-wide simulation defaults
// (n=8, 40 blocks, synchronous δ-bounded links, no adversary).
func Simulate(name string, opts ...Option) (SimResult, error) {
	spec, err := LookupSystem(name)
	if err != nil {
		return SimResult{}, err
	}
	s := applyOptions(opts)
	if err := s.instanceOnlyErr("Simulate"); err != nil {
		return SimResult{}, err
	}
	if s.adversary != "" && s.adversary != AdvNone {
		return SimResult{}, fmt.Errorf("blockadt: Simulate runs honest systems; use SimulateAdversary for %q", s.adversary)
	}
	if s.alpha != 0 {
		return SimResult{}, fmt.Errorf("blockadt: WithAlpha applies to SimulateAdversary, not Simulate")
	}
	if err := meritsErr(spec, s); err != nil {
		return SimResult{}, err
	}
	p := s.simParams()
	link := s.link
	if link == "" {
		link = LinkSync
	}
	lspec, err := LookupLink(link)
	if err != nil {
		return SimResult{}, err
	}
	if !lspec.supportsSystem(spec.Name) {
		return SimResult{}, fmt.Errorf("blockadt: system %q does not implement link model %q", spec.Name, link)
	}
	tspec, err := s.topologySpec(spec.Name, link, AdvNone)
	if err != nil {
		return SimResult{}, err
	}
	mspecs, err := s.metricSpecs()
	if err != nil {
		return SimResult{}, err
	}
	ex := Execution{System: specSystem{spec}, Params: ExecutionParams{Params: p}}
	if lspec.Plan != nil {
		lspec.Plan(&ex)
	}
	if tspec.Plan != nil {
		tspec.Plan(&ex)
	}
	res, err := chains.Execute(ex)
	if err != nil {
		return SimResult{}, convertExecuteErr(err)
	}
	if len(mspecs) > 0 {
		run := newMetricRun(p, res)
		merits := s.merits
		if len(merits) == 0 {
			merits = equalMerits(run.N)
		}
		run.FairnessTVD = fairness.Analyze(res.History, merits).TVD
		res.Metrics = computeMetrics(mspecs, run)
	}
	return res, nil
}

// meritsErr rejects a WithMerits vector the simulation would silently
// ignore or silently replace with the uniform default.
func meritsErr(spec SystemSpec, s settings) error {
	if len(s.merits) == 0 {
		return nil
	}
	if !spec.MeritAware {
		return fmt.Errorf("blockadt: system %q grants tokens deterministically and ignores WithMerits", spec.Name)
	}
	n := s.n
	if n == 0 {
		n = 8 // the simulators' process-count default
	}
	if len(s.merits) != n {
		return fmt.Errorf("blockadt: WithMerits has %d entries for %d processes — the simulator would fall back to uniform merits", len(s.merits), n)
	}
	return nil
}

// ClassifySimulated runs Simulate and classifies the recorded history
// with checker options sized from the same resolved parameters, so
// callers state the configuration exactly once.
func ClassifySimulated(name string, opts ...Option) (SimResult, Classification, error) {
	res, err := Simulate(name, opts...)
	if err != nil {
		return SimResult{}, Classification{}, err
	}
	return res, ClassifyRun(applyOptions(opts).simParams(), res), nil
}

// linkExpected resolves the consistency level predicted for a system
// under a link model: the link spec may adjust the system's default
// (synchronous) level.
func linkExpected(lspec LinkSpec, system string, sync Level) Level {
	if lspec.Expected != nil {
		return lspec.Expected(system, sync)
	}
	return sync
}

// ExpectedLevel returns the consistency level the theory predicts for
// the named system under the named link model — the same value the sweep
// engine compares measured runs against, so Simulate callers can check
// their classification the way the engine does.
func ExpectedLevel(system, link string) (Level, error) {
	spec, err := LookupSystem(system)
	if err != nil {
		return 0, err
	}
	lspec, err := LookupLink(link)
	if err != nil {
		return 0, err
	}
	if !lspec.supportsSystem(system) {
		return 0, fmt.Errorf("blockadt: system %q does not implement link model %q", system, link)
	}
	return linkExpected(lspec, system, spec.Expected), nil
}

// SimulateAdversary runs a registered system under a registered adversary
// holding merit share alpha (WithAlpha; default 0.34).
func SimulateAdversary(system, adversary string, opts ...Option) (AdversaryOutcome, error) {
	spec, err := LookupSystem(system)
	if err != nil {
		return AdversaryOutcome{}, err
	}
	aspec, err := LookupAdversary(adversary)
	if err != nil {
		return AdversaryOutcome{}, err
	}
	if aspec.Plan == nil {
		return AdversaryOutcome{}, fmt.Errorf("blockadt: adversary %q is the honest default; use Simulate", adversary)
	}
	s := applyOptions(opts)
	if err := s.instanceOnlyErr("SimulateAdversary"); err != nil {
		return AdversaryOutcome{}, err
	}
	if s.adversary != "" {
		return AdversaryOutcome{}, fmt.Errorf("blockadt: pass the adversary as SimulateAdversary's argument, not WithAdversary")
	}
	if len(s.merits) != 0 {
		return AdversaryOutcome{}, fmt.Errorf("blockadt: WithMerits conflicts with SimulateAdversary (the adversary model derives merits from WithAlpha)")
	}
	link := s.link
	if link == "" {
		link = LinkSync
	}
	if _, err := LookupLink(link); err != nil {
		return AdversaryOutcome{}, err
	}
	if !aspec.supportsSystem(spec.Name, link) {
		return AdversaryOutcome{}, fmt.Errorf("blockadt: system %q does not implement adversary %q under link %q", spec.Name, adversary, link)
	}
	if s.topology != "" && s.topology != TopoComplete {
		// The executor rejects the composition too; failing here names
		// the conflicting option.
		return AdversaryOutcome{}, fmt.Errorf("blockadt: WithTopology(%q) conflicts with SimulateAdversary (adversary models assume complete-graph broadcast)", s.topology)
	}
	alpha := s.alpha
	if alpha == 0 {
		alpha = 0.34
	}
	if alpha <= 0 || alpha >= 1 {
		return AdversaryOutcome{}, fmt.Errorf("blockadt: adversary merit share must be in (0,1), got %v", alpha)
	}
	mspecs, err := s.metricSpecs()
	if err != nil {
		return AdversaryOutcome{}, err
	}
	ex := Execution{System: specSystem{spec}, Params: ExecutionParams{Params: s.simParams(), Alpha: alpha}}
	aspec.Plan(&ex)
	res, err := chains.Execute(ex)
	if err != nil {
		return AdversaryOutcome{}, convertExecuteErr(err)
	}
	out := adversaryOutcome(aspec, spec.Name, link, s.simParams(), alpha, spec.Expected, res)
	if len(mspecs) > 0 {
		run := newMetricRun(s.simParams(), out.SimResult)
		run.FairnessTVD = out.FairnessTVD
		run.Adversarial = true
		run.AdversaryShare = out.AdversaryShare
		run.AdversaryMerit = out.AdversaryMerit
		out.SimResult.Metrics = computeMetrics(mspecs, run)
	}
	return out, nil
}

// SimCheckOptions returns consistency-checker options sized for a
// simulated run: the full correct process universe and a grace window
// spanning the convergence tail.
func SimCheckOptions(p SimParams, h *History) CheckOptions {
	return chains.Options(p, h)
}

// ClassifyRun classifies a simulated run's recorded history with
// simulation-sized checker options.
func ClassifyRun(p SimParams, res SimResult) Classification {
	return res.Classify(chains.Options(p, res.History))
}
