package blockadt

import "sync"

// Singleflight coalesces concurrent executions of identical scenarios:
// while one goroutine (the leader) is computing the result for a store
// key, every other goroutine asking for the same key blocks and receives
// the leader's result instead of simulating again. Combined with the run
// store this gives a sweep service its in-flight dedup layer — the store
// dedups across time (a finished scenario is a cache hit forever), the
// flight group dedups across space (n concurrent identical submissions
// simulate each scenario once, not n times).
//
// A Singleflight is safe for concurrent use and is meant to be shared
// across every Run/Stream call that should coalesce — pass the same
// instance through WithSingleflight. The zero value is not usable; call
// NewSingleflight.
type Singleflight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	r    Result
}

// NewSingleflight returns an empty flight group.
func NewSingleflight() *Singleflight {
	return &Singleflight{calls: map[string]*flightCall{}}
}

// Do executes fn under key, coalescing concurrent calls: the first
// caller for a key runs fn (leader=true); callers that arrive while it
// runs block and receive the leader's result without invoking fn
// (leader=false). The key is removed before the result is published, so
// a call arriving after completion starts a fresh flight — by then the
// run store already has the result, making the recompute a cache hit.
func (g *Singleflight) Do(key string, fn func() Result) (r Result, leader bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.r, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.r = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.r, true
}

// Inflight reports how many distinct keys are currently being computed —
// the in-flight gauge a serving layer exposes.
func (g *Singleflight) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
