package blockadt

import (
	"blockadt/internal/blocktree"
	"blockadt/internal/history"
	"blockadt/internal/oracle"
)

// SystemSpec describes one registered blockchain system: how the paper
// classifies it, which oracle/selector profile a live New() instance uses,
// and how to simulate a full network run of it.
type SystemSpec struct {
	// Name is the registry key (for the built-ins, the Table 1 row name).
	Name string
	// Description is the one-line summary `btadt list` prints.
	Description string
	// Refinement is the paper's claimed refinement, e.g. "R(BT-ADT_EC, Θ_P)".
	Refinement string
	// Expected is the consistency level the paper assigns.
	Expected Level
	// Oracle and Selector name the registry entries a live instance
	// (blockadt.New) composes by default.
	Oracle, Selector string
	// MeritAware reports that the simulator honors SimParams.Merits
	// (per-process token probabilities). Committee systems grant
	// deterministically and ignore merits; Simulate rejects WithMerits
	// for them instead of silently running uniform.
	MeritAware bool
	// Run simulates the system over its default (synchronous) network.
	Run func(p SimParams) SimResult
}

// OracleSpec describes a registered token-oracle family of the Θ
// hierarchy.
type OracleSpec struct {
	Name        string
	Description string
	// New constructs an oracle instance. The façade passes the composed
	// OracleConfig (K, Merits, Seed); the spec may override fields that
	// define the family (e.g. the prodigal spec forces K = Unbounded).
	New func(cfg OracleConfig) *Oracle
}

// SelectorSpec describes a registered selection function f : BT → BC.
type SelectorSpec struct {
	Name        string
	Description string
	New         func() Selector
}

// LinkSpec describes a registered communication model — one value of the
// scenario matrix's link dimension.
type LinkSpec struct {
	Name        string
	Description string
	// Params is the canonical encoding of the model's fixed parameters
	// ("p=0.10" for the lossy rate, "start=64,heal=192" for the
	// partition window, …; empty for parameterless models). It is
	// stamped into every expanded Scenario and therefore into scenario
	// keys and run-store cache keys: changing a link's parameters
	// changes scenario identity instead of silently serving results the
	// new parameters would not produce.
	Params string
	// Supports reports whether the named system implements this link
	// model in scenario runs; nil means every system does.
	Supports func(system string) bool
	// Plan composes the model into an execution: it sets the executor's
	// link strategy (one of the chains link plans) and the parameter
	// fields the plan reads. A nil Plan marks the default model: the
	// system's own synchronous simulator runs untouched.
	Plan func(ex *Execution)
	// Expected returns the consistency level the theory predicts for
	// the named system under this link model, given the system's
	// default (synchronous) level; nil means the level is unchanged.
	Expected func(system string, sync Level) Level
	// Hidden excludes the model from Registries() enumeration (and so
	// from `btadt list`). Hypothesis experiments register parameterized
	// variants of the built-in models on demand; hiding them keeps the
	// presentation surface stable while lookups, matrices and store keys
	// treat them like any other registration.
	Hidden bool
}

// AdversarySpec describes a registered fault model — one value of the
// scenario matrix's adversary dimension.
type AdversarySpec struct {
	Name        string
	Description string
	// Supports reports whether the named system implements this
	// adversary under the named link model; nil means every combination.
	Supports func(system, link string) bool
	// Plan composes the fault model into an execution: it sets the
	// executor's adversary strategy (one of the chains adversary plans);
	// the adversary's merit share travels as the execution's Alpha
	// parameter. A nil Plan marks the honest default.
	Plan func(ex *Execution)
	// Expected returns the consistency level the adversarial run is
	// predicted to retain, given the system's honest synchronous level;
	// nil means the level is unchanged.
	Expected func(system, link string, honest Level) Level
	// Entitlement returns the per-process merit entitlement vector this
	// model defines (the chain-quality baseline the fairness TVD is
	// measured against). Only the model knows its merit layout — e.g.
	// the selfish miner normalizes the process count before splitting
	// the honest remainder.
	Entitlement func(p SimParams, alpha float64) []float64
}

// TopologySpec describes a registered dissemination topology — one value
// of the scenario matrix's topology dimension. The default complete
// graph is the nil-Plan entry: every pre-existing scenario runs exactly
// as before, and only non-default topologies join scenario keys.
type TopologySpec struct {
	Name        string
	Description string
	// Params is the canonical encoding of the topology's fixed
	// parameters ("k=3" for gossip degree, …). Like LinkSpec.Params it
	// joins scenario keys and run-store cache keys — but only for
	// non-default topologies, so pre-existing keys are unchanged.
	Params string
	// Supports reports whether the (system, link, adversary) composition
	// implements this topology; nil means every combination.
	Supports func(system, link, adversary string) bool
	// Plan composes the topology into an execution: it sets the
	// executor's topology strategy (gossip graph, link decoration, or
	// both). A nil Plan marks the default complete graph.
	Plan func(ex *Execution)
	// Expected returns the consistency level the theory predicts under
	// this topology, given the level predicted by the system and link
	// model; nil means the level is unchanged.
	Expected func(system, link string, honest Level) Level
	// Hidden excludes the topology from Registries() enumeration, like
	// hidden link variants.
	Hidden bool
}

// MetricSpec describes a registered run-measurement collector — one
// value of the metrics dimension of instrumented sweeps (docs/metrics.md).
type MetricSpec struct {
	// Name is the registry key and the JSON key of the metric's values
	// in sweep results and aggregates.
	Name string
	// Description is the one-line summary `btadt list` prints.
	Description string
	// Compute measures one run. The boolean reports applicability: an
	// inapplicable metric (e.g. adversary share on an honest run) is
	// skipped, not recorded as zero. Compute must be a pure function of
	// the snapshot — the determinism of metrics-enabled sweep JSON
	// depends on it.
	Compute func(MetricRun) (float64, bool)
}

// AdversaryOutcome is the structured result of an adversarial run.
type AdversaryOutcome struct {
	SimResult
	// Expected is the consistency level the adversarial run is predicted
	// to retain.
	Expected Level
	// FairnessTVD is the chain-quality total variation distance between
	// realized and entitled block shares, as this adversary model
	// defines entitlement. The spec's Run computes it — only the model
	// knows its merit layout; leave it 0 if not meaningful.
	FairnessTVD float64
	// AdversaryMined / HonestMined count oracle-validated blocks.
	AdversaryMined, HonestMined int
	// AdversaryShare / HonestShare are realized main-chain proportions;
	// AdversaryMerit is the adversary's entitled share.
	AdversaryShare, HonestShare, AdversaryMerit float64
	// Orphaned counts mined blocks that missed the final main chain.
	Orphaned int
	// MainChainByProc is the main-chain authorship census, the input to
	// chain-quality fairness analysis.
	MainChainByProc map[history.ProcID]int
}

// supportsSystem applies the spec's Supports predicate with the
// nil-means-everything default.
func (l LinkSpec) supportsSystem(system string) bool {
	return l.Supports == nil || l.Supports(system)
}

func (a AdversarySpec) supportsSystem(system, link string) bool {
	return a.Supports == nil || a.Supports(system, link)
}

func (t TopologySpec) supportsScenario(system, link, adversary string) bool {
	return t.Supports == nil || t.Supports(system, link, adversary)
}

// asChainsSystem adapts a SystemSpec back to the internal simulator
// interface so the Table 1 classifier can run registry entries.
type specSystem struct{ spec SystemSpec }

func (s specSystem) Name() string       { return s.spec.Name }
func (s specSystem) Refinement() string { return s.spec.Refinement }
func (s specSystem) Expected() Level    { return s.spec.Expected }
func (s specSystem) Run(p SimParams) SimResult {
	return s.spec.Run(p)
}

// Selector is the selection function interface f ∈ F : BT → BC.
type Selector = blocktree.Selector

// Oracle is a token-oracle instance (Θ_P or Θ_F,k).
type Oracle = oracle.Oracle

// OracleConfig parameterizes an oracle: fork bound K (Unbounded for Θ_P),
// per-merit token probabilities, and the pseudorandom tape seed.
type OracleConfig = oracle.Config

// Unbounded is the K value of the prodigal oracle Θ_P.
const Unbounded = oracle.Unbounded
