package blockadt

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"blockadt/internal/obs"
	"blockadt/internal/runstore"
)

// EngineVersion names the simulation semantics the run store caches
// under. It participates in every store key, so bumping it (required
// whenever a change makes any scenario's Result differ — new simulator
// behavior, a metric's formula, the classifier) invalidates every cached
// entry at once instead of silently serving results the current engine
// would no longer produce.
// v2: WeaklySynchronous honors the DLS pre-GST delivery bound (psync
// results shifted) and the link dimension gained lossy/partition/jitter.
// v3: the PoW harness drains the event queue to idle before its final
// convergence reads instead of running a fixed 64+16δ window, so Ticks now
// ends at the last real delivery (and heavy-tail stragglers are no longer
// read past) — Ticks-derived metrics shifted for every PoW scenario.
const EngineVersion = "btadt-engine-v3"

// RunOption customizes Run and Stream (the sweep engine's entry
// points), as Option customizes New/Simulate. The zero set of options
// reproduces the historical behavior exactly.
type RunOption func(*runConfig)

type runConfig struct {
	storeDir string
	storeGC  bool
	store    *RunStore
	flight   *Singleflight
	census   *Census
	tracers  []obs.Tracer
}

// WithStore backs the sweep with the content-addressed run store at
// dir (created if missing): scenarios whose key — a hash of {engine
// version, root seed, scenario coordinates, derived seed, metric set} —
// is already cached are served from disk without simulating, and misses
// are computed and persisted atomically. Because the store holds each
// scenario's canonical Result JSON, a cached sweep's report is
// byte-identical to a cold run's at any parallelism.
func WithStore(dir string) RunOption {
	return func(c *runConfig) { c.storeDir = dir }
}

// WithStoreGC garbage-collects the store after the sweep: every entry
// that is not part of this matrix's FULL (unsharded) expansion under the
// current engine version is deleted. Sharded sweeps therefore never
// collect sibling shards' entries. Only meaningful with WithStore.
func WithStoreGC() RunOption {
	return func(c *runConfig) { c.storeGC = true }
}

// WithRunStore backs the sweep with an already-open RunStore handle
// instead of opening the directory per call. A long-running service
// passes one shared handle through every Run/Stream so cache-hit/miss
// statistics accumulate process-wide and the index is loaded once.
// Takes precedence over WithStore when both are given.
func WithRunStore(s *RunStore) RunOption {
	return func(c *runConfig) { c.store = s }
}

// WithSingleflight coalesces concurrent executions of identical
// scenarios across every Run/Stream sharing the group: while one call is
// simulating a scenario, others wanting the same store key wait for its
// result instead of simulating again. See Singleflight.
func WithSingleflight(g *Singleflight) RunOption {
	return func(c *runConfig) { c.flight = g }
}

// WithCensus makes the sweep count, into c, how each scenario was
// satisfied: served from the store, simulated by this call, or coalesced
// onto another call's in-flight simulation. Read the census after the
// sweep completes.
func WithCensus(c *Census) RunOption {
	return func(rc *runConfig) { rc.census = c }
}

func applyRunOptions(opts []RunOption) runConfig {
	var c runConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Census counts how one sweep's scenarios were satisfied. Safe for
// concurrent use; a zero Census is ready. For a completed sweep,
// Scenarios = CacheHits + Simulated + Coalesced (+ Skipped for a sweep
// torn down mid-flight).
type Census struct {
	scenarios, cacheHits, simulated, coalesced, skipped atomic.Uint64
}

// Scenarios is the number of scenario executions the sweep attempted.
func (c *Census) Scenarios() uint64 { return c.scenarios.Load() }

// CacheHits is the number served from the run store without simulating.
func (c *Census) CacheHits() uint64 { return c.cacheHits.Load() }

// Simulated is the number this sweep actually simulated (as flight
// leader, when a Singleflight is configured).
func (c *Census) Simulated() uint64 { return c.simulated.Load() }

// Coalesced is the number satisfied by waiting on another concurrent
// sweep's in-flight simulation of the same scenario.
func (c *Census) Coalesced() uint64 { return c.coalesced.Load() }

// Skipped is the number abandoned without simulating because the sweep
// was torn down (context cancelled or consumer gone) first.
func (c *Census) Skipped() uint64 { return c.skipped.Load() }

// scenarioRuns counts simulator invocations made by the sweep engine
// (runScenario calls). Tests use the difference across a sweep to pin
// the "cached sweeps simulate nothing" contract.
var scenarioRuns atomic.Uint64

// ScenarioRuns reports the cumulative number of scenario simulations the
// sweep engine has executed in this process. A fully cached sweep leaves
// it unchanged.
func ScenarioRuns() uint64 { return scenarioRuns.Load() }

// storeKey derives a scenario's run-store key. Everything that can
// change the scenario's canonical Result JSON participates: the engine
// version, the root seed (the derived seed is included too, though it is
// a function of the two), the scenario's canonical coordinates, and the
// sorted deduplicated metric set (metrics add fields to the Result but
// never alter the simulation).
func storeKey(rootSeed uint64, cfg Scenario, metricNames []string) string {
	names := append([]string(nil), metricNames...)
	sort.Strings(names)
	names = uniqSorted(names)
	return fmt.Sprintf("%s|root=%d|%s|seed=%d|metrics=%s",
		EngineVersion, rootSeed, cfg.Key(), cfg.Seed, strings.Join(names, ","))
}

func uniqSorted(names []string) []string {
	out := names[:0]
	for i, n := range names {
		if i == 0 || n != names[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// StoreStats snapshots a RunStore handle's operation counters (hits,
// misses, puts, bytes moved). Counters are per-handle and start at zero
// at OpenStore — they measure this process's traffic, not the store's
// on-disk history.
type StoreStats = runstore.Stats

// RunStore is an open handle on a content-addressed run store directory
// — the façade's view of the cache WithStore points the sweep engine at.
// A handle is safe for concurrent use and is meant to be shared: a
// long-running service opens one RunStore and passes it to every sweep
// through WithRunStore, so Stats aggregates across requests. Get/Put/Has
// operate on raw store envelopes (key → canonical Result JSON) — the
// currency of the worker/coordinator shard-upload protocol.
type RunStore struct {
	s *runstore.Store
}

// OpenStore opens (creating if necessary) the run store rooted at dir.
func OpenStore(dir string) (*RunStore, error) {
	s, err := runstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &RunStore{s: s}, nil
}

// Get returns the cached value for key; a missing, unreadable or corrupt
// entry is reported as a plain miss.
func (s *RunStore) Get(key string) ([]byte, bool, error) { return s.s.Get(key) }

// Put stores value under key atomically.
func (s *RunStore) Put(key string, value []byte) error { return s.s.Put(key, value) }

// Has reports whether key has an entry, from the index alone (no file
// read — advisory, like StorePreflight).
func (s *RunStore) Has(key string) bool { return s.s.Has(key) }

// Len reports the number of cached entries.
func (s *RunStore) Len() int { return s.s.Len() }

// Stats snapshots the handle's hit/miss/put/byte counters.
func (s *RunStore) Stats() StoreStats { return s.s.Stats() }

// Flush writes the store's index accelerator if anything changed.
func (s *RunStore) Flush() error { return s.s.Flush() }

// StoreKeys returns the run-store key of every scenario the matrix
// expands to, in expansion order — the addresses a sweep of this matrix
// reads and writes. A worker uploads exactly these keys' envelopes after
// running its shard.
func (m Matrix) StoreKeys() ([]string, error) {
	configs, err := m.Configs()
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(configs))
	for i, cfg := range configs {
		keys[i] = storeKey(m.RootSeed, cfg, m.Metrics)
	}
	return keys, nil
}

// Fingerprint returns the matrix's content address: a hex SHA-256 over
// the engine version and every expanded scenario's store key (which
// folds in the root seed, canonical scenario coordinates, derived seeds
// and sorted metric set). Two matrices get the same fingerprint exactly
// when a sweep of each would read and write the same store entries under
// the same engine — making it the natural sweep identity and HTTP ETag
// for a cache-first sweep service. It errors on the same inputs Configs
// does (unknown names, bad alpha, bad shard spec).
func (m Matrix) Fingerprint() (string, error) {
	keys, err := m.StoreKeys()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(EngineVersion))
	for _, k := range keys {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// runCache binds one sweep to its store: per-scenario keys precomputed
// in expansion order, hit/miss bookkeeping, and end-of-run flush/GC.
type runCache struct {
	store *runstore.Store
	keys  []string
}

// get serves scenario i from the store. Unreadable or undecodable
// entries degrade to a miss (the caller recomputes and put overwrites).
func (c *runCache) get(i int) (Result, bool) {
	raw, ok, err := c.store.Get(c.keys[i])
	if err != nil || !ok {
		return Result{}, false
	}
	var r Result
	if json.Unmarshal(raw, &r) != nil {
		return Result{}, false
	}
	return r, true
}

// put persists scenario i's result.
func (c *runCache) put(i int, r Result) error {
	enc, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return c.store.Put(c.keys[i], enc)
}

// sweepRunner is the per-scenario execution core shared by Run and
// Stream: cache lookup, optional singleflight coalescing, census
// bookkeeping, store persistence and deferred store-error capture.
type sweepRunner struct {
	cache    *runCache
	flight   *Singleflight
	census   *Census
	keys     []string // non-nil when cache or flight need them
	specs    []MetricSpec
	storeErr atomic.Pointer[error]
	// tracer receives one obs.Span per scenario execution; nil (the
	// default) keeps the hot path free of wall-clock reads beyond the
	// historical WallNS one. epoch anchors the spans' common timeline.
	tracer obs.Tracer
	epoch  time.Time
}

// newSweepRunner resolves the run options against the expanded matrix.
func newSweepRunner(c runConfig, m Matrix, configs []Scenario, specs []MetricSpec) (*sweepRunner, error) {
	r := &sweepRunner{flight: c.flight, census: c.census, specs: specs}
	if r.tracer = obs.Multi(c.tracers...); r.tracer != nil {
		r.epoch = time.Now()
	}
	store := c.store
	if store == nil && c.storeDir != "" {
		opened, err := OpenStore(c.storeDir)
		if err != nil {
			return nil, err
		}
		store = opened
	}
	if store != nil || c.flight != nil {
		r.keys = make([]string, len(configs))
		for i, cfg := range configs {
			r.keys[i] = storeKey(m.RootSeed, cfg, m.Metrics)
		}
	}
	if store != nil {
		r.cache = &runCache{store: store.s, keys: r.keys}
	}
	return r, nil
}

// spanRec accumulates one scenario execution's span. A nil *spanRec
// means tracing is off: every method no-ops on a nil receiver, so the
// untraced hot path pays one pointer check per phase boundary and takes
// no wall-clock reads — which is what keeps BenchmarkSweepMatrix with a
// nil tracer at its instrumentation-free baseline.
type spanRec struct {
	span  obs.Span
	start time.Time
}

// beginSpan opens the span for scenario i (nil when tracing is off).
// The queue phase — sweep start to worker pickup — is closed here.
func (r *sweepRunner) beginSpan(i int) *spanRec {
	if r.tracer == nil {
		return nil
	}
	now := time.Now()
	s := &spanRec{start: now}
	s.span.Index = i
	s.span.StartNS = now.Sub(r.epoch).Nanoseconds()
	s.span.QueueNS = s.span.StartNS
	return s
}

// now is the traced-only clock read: zero (and free) when tracing is off.
func (s *spanRec) now() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

func (s *spanRec) addStoreGet(t0 time.Time) {
	if s != nil {
		s.span.StoreGetNS += time.Since(t0).Nanoseconds()
	}
}

func (s *spanRec) addSimulate(t0 time.Time) {
	if s != nil {
		s.span.SimulateNS += time.Since(t0).Nanoseconds()
	}
}

func (s *spanRec) addStorePut(t0 time.Time) {
	if s != nil {
		s.span.StorePutNS += time.Since(t0).Nanoseconds()
	}
}

// finish stamps the outcome and emits the span to the runner's tracers.
func (s *spanRec) finish(r *sweepRunner, cfg Scenario, outcome string) {
	if s == nil {
		return
	}
	s.span.Key = cfg.Key()
	s.span.Outcome = outcome
	s.span.TotalNS = time.Since(s.start).Nanoseconds()
	r.tracer.ObserveSpan(s.span)
}

// exec runs scenario i: store hit, coalesced wait, or a real simulation
// persisted to the store. A cancelled ctx (the stream was torn down)
// skips scenarios that have not started — nothing downstream consumes
// their results, and not starting them is what makes teardown prompt.
func (r *sweepRunner) exec(ctx context.Context, i int, cfg Scenario) Result {
	if r.census != nil {
		r.census.scenarios.Add(1)
	}
	sp := r.beginSpan(i)
	if r.cache != nil {
		t0 := sp.now()
		res, ok := r.cache.get(i)
		sp.addStoreGet(t0)
		if ok {
			if r.census != nil {
				r.census.cacheHits.Add(1)
			}
			sp.finish(r, cfg, obs.OutcomeCacheHit)
			return res
		}
	}
	if ctx != nil && ctx.Err() != nil {
		if r.census != nil {
			r.census.skipped.Add(1)
		}
		sp.finish(r, cfg, obs.OutcomeSkipped)
		return Result{}
	}
	simulated := false
	compute := func() Result {
		// Double-check the store under flight leadership: a previous
		// leader persists before releasing its key, so a caller that
		// missed the cache, stalled, and then won a fresh flight finds
		// the entry here instead of simulating the scenario twice. This
		// is what makes "each scenario simulated at most once" exact
		// rather than probabilistic under concurrent identical sweeps.
		if r.flight != nil && r.cache != nil {
			t0 := sp.now()
			res, ok := r.cache.get(i)
			sp.addStoreGet(t0)
			if ok {
				return res
			}
		}
		simulated = true
		t0 := sp.now()
		res := runScenario(cfg, r.specs)
		sp.addSimulate(t0)
		if r.cache != nil {
			t1 := sp.now()
			err := r.cache.put(i, res)
			sp.addStorePut(t1)
			if err != nil {
				r.storeErr.CompareAndSwap(nil, &err)
			}
		}
		return res
	}
	if r.flight != nil {
		t0 := sp.now()
		res, leader := r.flight.Do(r.keys[i], compute)
		var outcome string
		switch {
		case leader && simulated:
			outcome = obs.OutcomeSimulated
		case leader:
			outcome = obs.OutcomeCacheHit
		default:
			// The wait for the leader's simulation is this execution's
			// simulate phase: it is where the scenario's latency went.
			sp.addSimulate(t0)
			outcome = obs.OutcomeCoalesced
		}
		if r.census != nil {
			switch outcome {
			case obs.OutcomeSimulated:
				r.census.simulated.Add(1)
			case obs.OutcomeCacheHit:
				r.census.cacheHits.Add(1)
			default:
				r.census.coalesced.Add(1)
			}
		}
		sp.finish(r, cfg, outcome)
		return res
	}
	if r.census != nil {
		r.census.simulated.Add(1)
	}
	res := compute()
	sp.finish(r, cfg, obs.OutcomeSimulated)
	return res
}

// err surfaces the first store-persistence failure, if any.
func (r *sweepRunner) err() error {
	if errp := r.storeErr.Load(); errp != nil {
		return *errp
	}
	return nil
}

// flush persists the store index without GC — the teardown path for
// interrupted sweeps, so completed writes survive (objects are already
// durable; this just spares the next Open a reconciliation scan).
func (r *sweepRunner) flush() {
	if r.cache != nil {
		_ = r.cache.store.Flush()
	}
}

// finish flushes the index and, when requested, garbage-collects every
// entry outside the matrix's full unsharded expansion.
func (r *sweepRunner) finish(gc bool, m Matrix) error {
	if r.cache == nil {
		return nil
	}
	if gc {
		full := m
		full.ShardIndex, full.ShardCount = 0, 0
		configs, err := full.Configs()
		if err != nil {
			return err
		}
		keep := make(map[string]bool, len(configs))
		for _, cfg := range configs {
			keep[storeKey(m.RootSeed, cfg, m.Metrics)] = true
		}
		if _, err := r.cache.store.GC(func(key string) bool { return keep[key] }); err != nil {
			return err
		}
		return nil
	}
	return r.cache.store.Flush()
}

// StorePreflight reports how many of the matrix's scenarios are already
// cached in the store at dir (created if missing): the numbers behind
// `btadt sweep -resume`'s "X/Y cached" note and the guard that refuses
// to serve a pre-populated store without an explicit -resume. It counts
// from the store index without reading objects, so it is advisory — an
// object corrupted on disk still counts here and degrades to a
// recompute when served. The post-run ScenarioRuns delta is the exact
// measure of what was actually simulated.
func StorePreflight(dir string, m Matrix) (cached, total int, err error) {
	configs, err := m.Configs()
	if err != nil {
		return 0, 0, err
	}
	store, err := runstore.Open(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, cfg := range configs {
		if store.Has(storeKey(m.RootSeed, cfg, m.Metrics)) {
			cached++
		}
	}
	return cached, len(configs), nil
}
