package blockadt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"blockadt/internal/runstore"
)

// EngineVersion names the simulation semantics the run store caches
// under. It participates in every store key, so bumping it (required
// whenever a change makes any scenario's Result differ — new simulator
// behavior, a metric's formula, the classifier) invalidates every cached
// entry at once instead of silently serving results the current engine
// would no longer produce.
// v2: WeaklySynchronous honors the DLS pre-GST delivery bound (psync
// results shifted) and the link dimension gained lossy/partition/jitter.
// v3: the PoW harness drains the event queue to idle before its final
// convergence reads instead of running a fixed 64+16δ window, so Ticks now
// ends at the last real delivery (and heavy-tail stragglers are no longer
// read past) — Ticks-derived metrics shifted for every PoW scenario.
const EngineVersion = "btadt-engine-v3"

// RunOption customizes Run and Stream (the sweep engine's entry
// points), as Option customizes New/Simulate. The zero set of options
// reproduces the historical behavior exactly.
type RunOption func(*runConfig)

type runConfig struct {
	storeDir string
	storeGC  bool
}

// WithStore backs the sweep with the content-addressed run store at
// dir (created if missing): scenarios whose key — a hash of {engine
// version, root seed, scenario coordinates, derived seed, metric set} —
// is already cached are served from disk without simulating, and misses
// are computed and persisted atomically. Because the store holds each
// scenario's canonical Result JSON, a cached sweep's report is
// byte-identical to a cold run's at any parallelism.
func WithStore(dir string) RunOption {
	return func(c *runConfig) { c.storeDir = dir }
}

// WithStoreGC garbage-collects the store after the sweep: every entry
// that is not part of this matrix's FULL (unsharded) expansion under the
// current engine version is deleted. Sharded sweeps therefore never
// collect sibling shards' entries. Only meaningful with WithStore.
func WithStoreGC() RunOption {
	return func(c *runConfig) { c.storeGC = true }
}

func applyRunOptions(opts []RunOption) runConfig {
	var c runConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// scenarioRuns counts simulator invocations made by the sweep engine
// (runScenario calls). Tests use the difference across a sweep to pin
// the "cached sweeps simulate nothing" contract.
var scenarioRuns atomic.Uint64

// ScenarioRuns reports the cumulative number of scenario simulations the
// sweep engine has executed in this process. A fully cached sweep leaves
// it unchanged.
func ScenarioRuns() uint64 { return scenarioRuns.Load() }

// storeKey derives a scenario's run-store key. Everything that can
// change the scenario's canonical Result JSON participates: the engine
// version, the root seed (the derived seed is included too, though it is
// a function of the two), the scenario's canonical coordinates, and the
// sorted deduplicated metric set (metrics add fields to the Result but
// never alter the simulation).
func storeKey(rootSeed uint64, cfg Scenario, metricNames []string) string {
	names := append([]string(nil), metricNames...)
	sort.Strings(names)
	names = uniqSorted(names)
	return fmt.Sprintf("%s|root=%d|%s|seed=%d|metrics=%s",
		EngineVersion, rootSeed, cfg.Key(), cfg.Seed, strings.Join(names, ","))
}

func uniqSorted(names []string) []string {
	out := names[:0]
	for i, n := range names {
		if i == 0 || n != names[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// runCache binds one sweep to its store: per-scenario keys precomputed
// in expansion order, hit/miss bookkeeping, and end-of-run flush/GC.
type runCache struct {
	store *runstore.Store
	keys  []string
	hits  atomic.Uint64
}

// newRunCache opens the configured store (nil config → nil cache) and
// precomputes the key of every expanded scenario.
func newRunCache(c runConfig, m Matrix, configs []Scenario) (*runCache, error) {
	if c.storeDir == "" {
		return nil, nil
	}
	store, err := runstore.Open(c.storeDir)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(configs))
	for i, cfg := range configs {
		keys[i] = storeKey(m.RootSeed, cfg, m.Metrics)
	}
	return &runCache{store: store, keys: keys}, nil
}

// get serves scenario i from the store. Unreadable or undecodable
// entries degrade to a miss (the caller recomputes and put overwrites).
func (c *runCache) get(i int) (Result, bool) {
	raw, ok, err := c.store.Get(c.keys[i])
	if err != nil || !ok {
		return Result{}, false
	}
	var r Result
	if json.Unmarshal(raw, &r) != nil {
		return Result{}, false
	}
	c.hits.Add(1)
	return r, true
}

// put persists scenario i's result.
func (c *runCache) put(i int, r Result) error {
	enc, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return c.store.Put(c.keys[i], enc)
}

// finish flushes the index and, when requested, garbage-collects every
// entry outside the matrix's full unsharded expansion.
func (c *runCache) finish(gc bool, m Matrix) error {
	if gc {
		full := m
		full.ShardIndex, full.ShardCount = 0, 0
		configs, err := full.Configs()
		if err != nil {
			return err
		}
		keep := make(map[string]bool, len(configs))
		for _, cfg := range configs {
			keep[storeKey(m.RootSeed, cfg, m.Metrics)] = true
		}
		if _, err := c.store.GC(func(key string) bool { return keep[key] }); err != nil {
			return err
		}
		return nil
	}
	return c.store.Flush()
}

// StorePreflight reports how many of the matrix's scenarios are already
// cached in the store at dir (created if missing): the numbers behind
// `btadt sweep -resume`'s "X/Y cached" note and the guard that refuses
// to serve a pre-populated store without an explicit -resume. It counts
// from the store index without reading objects, so it is advisory — an
// object corrupted on disk still counts here and degrades to a
// recompute when served. The post-run ScenarioRuns delta is the exact
// measure of what was actually simulated.
func StorePreflight(dir string, m Matrix) (cached, total int, err error) {
	configs, err := m.Configs()
	if err != nil {
		return 0, 0, err
	}
	store, err := runstore.Open(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, cfg := range configs {
		if store.Has(storeKey(m.RootSeed, cfg, m.Metrics)) {
			cached++
		}
	}
	return cached, len(configs), nil
}
