package blockadt

import (
	"bytes"
	"context"
	"testing"
)

// storeTestMatrix pins its systems explicitly so registrations made by
// other tests cannot change the expansion under us, and enables metric
// collection so cached results must round-trip the metrics map too.
func storeTestMatrix() Matrix {
	return Matrix{
		Systems:      []string{"Bitcoin", "Hyperledger"},
		Links:        []string{LinkSync, LinkAsync},
		Adversaries:  []string{AdvNone, AdvSelfish},
		Seeds:        2,
		RootSeed:     11,
		TargetBlocks: 10,
		Metrics:      MetricNames(),
	}
}

// TestStoreRoundTrip is the tentpole's golden contract: populate a store
// through a sweep, reopen it, serve the same sweep entirely from cache —
// the JSON is byte-identical to the cold run and the cached pass
// performs zero simulations (pinned by the ScenarioRuns counter).
func TestStoreRoundTrip(t *testing.T) {
	m := storeTestMatrix()
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}

	cold, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	coldJSON, err := cold.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	before := ScenarioRuns()
	populated, err := Run(m, 2, WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	if ran := ScenarioRuns() - before; ran != uint64(len(configs)) {
		t.Fatalf("populating run simulated %d scenarios, want %d", ran, len(configs))
	}
	populatedJSON, err := populated.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, populatedJSON) {
		t.Fatal("store-backed cold run diverged from plain run")
	}

	// Reopen (a fresh Run opens the store anew) and serve from cache.
	before = ScenarioRuns()
	cached, err := Run(m, 4, WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	if ran := ScenarioRuns() - before; ran != 0 {
		t.Fatalf("cached run simulated %d scenarios, want 0", ran)
	}
	cachedJSON, err := cached.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, cachedJSON) {
		t.Fatal("cached run is not byte-identical to the cold run")
	}

	if hit, total, err := StorePreflight(dir, m); err != nil || hit != len(configs) || total != len(configs) {
		t.Fatalf("StorePreflight = (%d, %d, %v), want (%d, %d, nil)", hit, total, err, len(configs), len(configs))
	}
}

// TestStreamServesFromStore pins the same contract on the streaming
// path, populated by Run and served by Stream.
func TestStreamServesFromStore(t *testing.T) {
	m := storeTestMatrix()
	dir := t.TempDir()
	cold, err := Run(m, 1, WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}

	before := ScenarioRuns()
	var streamed []Result
	for r, err := range Stream(context.Background(), m, 3, WithStore(dir)) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, r)
	}
	if ran := ScenarioRuns() - before; ran != 0 {
		t.Fatalf("cached stream simulated %d scenarios, want 0", ran)
	}
	streamedRep := &Report{RootSeed: m.RootSeed, Results: streamed, Total: len(streamed)}
	for _, r := range streamed {
		if r.Match {
			streamedRep.Matched++
		}
		streamedRep.Ticks += r.Ticks
	}
	a, err := cold.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := streamedRep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("streamed cached report diverged from cold report")
	}
}

// TestStorePartialResume pins incremental behavior: a store populated by
// one shard serves that shard's scenarios and simulates only the rest.
func TestStorePartialResume(t *testing.T) {
	m := storeTestMatrix()
	shard0, err := m.Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Run(shard0, 1, WithStore(dir)); err != nil {
		t.Fatal(err)
	}
	shardConfigs, err := shard0.Configs()
	if err != nil {
		t.Fatal(err)
	}
	fullConfigs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}

	before := ScenarioRuns()
	full, err := Run(m, 2, WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(len(fullConfigs) - len(shardConfigs))
	if ran := ScenarioRuns() - before; ran != want {
		t.Fatalf("resumed run simulated %d scenarios, want %d (the non-cached remainder)", ran, want)
	}
	plain, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := plain.EncodeJSON()
	b, _ := full.EncodeJSON()
	if !bytes.Equal(a, b) {
		t.Fatal("resumed run diverged from plain run")
	}
}

// TestStoreKeyIncludesMetrics pins that the metric set participates in
// the store key: a metrics-enabled sweep must not be served results
// cached without metrics (their Result rows differ).
func TestStoreKeyIncludesMetrics(t *testing.T) {
	m := storeTestMatrix()
	m.Metrics = nil
	dir := t.TempDir()
	if _, err := Run(m, 1, WithStore(dir)); err != nil {
		t.Fatal(err)
	}
	withMetrics := m
	withMetrics.Metrics = MetricNames()
	configs, err := withMetrics.Configs()
	if err != nil {
		t.Fatal(err)
	}
	before := ScenarioRuns()
	rep, err := Run(withMetrics, 1, WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	if ran := ScenarioRuns() - before; ran != uint64(len(configs)) {
		t.Fatalf("metrics-enabled sweep reused metrics-free cache entries (%d simulated, want %d)", ran, len(configs))
	}
	if len(rep.Results[0].Metrics) == 0 {
		t.Fatal("metrics missing from the metrics-enabled sweep")
	}
}

// TestStoreGC pins WithStoreGC: entries outside the matrix's full
// expansion (here: a stale root seed) are collected, current ones kept.
func TestStoreGC(t *testing.T) {
	stale := storeTestMatrix()
	dir := t.TempDir()
	if _, err := Run(stale, 1, WithStore(dir)); err != nil {
		t.Fatal(err)
	}
	current := stale
	current.RootSeed = stale.RootSeed + 1
	if _, err := Run(current, 1, WithStore(dir), WithStoreGC()); err != nil {
		t.Fatal(err)
	}
	staleHits, _, err := StorePreflight(dir, stale)
	if err != nil {
		t.Fatal(err)
	}
	if staleHits != 0 {
		t.Fatalf("GC left %d stale entries", staleHits)
	}
	curHits, total, err := StorePreflight(dir, current)
	if err != nil {
		t.Fatal(err)
	}
	if curHits != total {
		t.Fatalf("GC collected live entries: %d/%d cached", curHits, total)
	}
}
