package blockadt

import (
	"context"
	"iter"
	"sync/atomic"

	"blockadt/internal/parallel"
)

// Stream expands the matrix and yields its results in matrix-expansion
// order as they complete across a bounded pool of the given parallelism
// (<1 selects NumCPU) — without buffering the full report, so arbitrarily
// large sweeps run in bounded memory. The scenarios executed and the
// values yielded are exactly those Run would report for the same matrix.
//
// The first yielded pair carries a non-nil error (and a zero Result) if
// the matrix fails to expand, the run store fails, or the context is
// cancelled; iteration stops after any error. Breaking out of the loop
// stops scheduling new scenarios; in-flight ones finish in the
// background. With WithStore, cached scenarios are served from the run
// store without simulating and misses are computed and persisted, like
// Run.
func Stream(ctx context.Context, m Matrix, parallelism int, opts ...RunOption) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		configs, err := m.Configs()
		if err != nil {
			yield(Result{}, err)
			return
		}
		specs, err := m.metricSpecs()
		if err != nil {
			yield(Result{}, err)
			return
		}
		rcfg := applyRunOptions(opts)
		cache, err := newRunCache(rcfg, m, configs)
		if err != nil {
			yield(Result{}, err)
			return
		}
		var storeErr atomic.Pointer[error]
		for _, r := range parallel.Stream(ctx, configs, parallelism, func(i int, cfg Scenario) Result {
			if cache != nil {
				if r, ok := cache.get(i); ok {
					return r
				}
			}
			r := runScenario(cfg, specs)
			if cache != nil {
				if err := cache.put(i, r); err != nil {
					storeErr.CompareAndSwap(nil, &err)
				}
			}
			return r
		}) {
			if err := ctx.Err(); err != nil {
				yield(Result{}, err)
				return
			}
			if errp := storeErr.Load(); errp != nil {
				yield(Result{}, *errp)
				return
			}
			if !yield(r, nil) {
				return
			}
		}
		// The inner stream stops silently when the context fires between
		// yields; surface the cancellation as the final pair.
		if err := ctx.Err(); err != nil {
			yield(Result{}, err)
			return
		}
		if errp := storeErr.Load(); errp != nil {
			yield(Result{}, *errp)
			return
		}
		if cache != nil {
			if err := cache.finish(rcfg.storeGC, m); err != nil {
				yield(Result{}, err)
			}
		}
	}
}
