package blockadt

import (
	"context"
	"iter"

	"blockadt/internal/parallel"
)

// Stream expands the matrix and yields its results in matrix-expansion
// order as they complete across a bounded pool of the given parallelism
// (<1 selects NumCPU) — without buffering the full report, so arbitrarily
// large sweeps run in bounded memory. The scenarios executed and the
// values yielded are exactly those Run would report for the same matrix.
//
// The first yielded pair carries a non-nil error (and a zero Result) if
// the matrix fails to expand, the run store fails, or the context is
// cancelled; iteration stops after any error. Breaking out of the loop
// tears the sweep down promptly: the inner pool is cancelled, so
// scenarios that have not started are skipped instead of finishing in
// the background, scenarios already simulating run to completion (and,
// with a store, persist), and the store index is flushed so completed
// writes survive for the next resume. With WithStore, cached scenarios
// are served from the run store without simulating and misses are
// computed and persisted, like Run.
func Stream(ctx context.Context, m Matrix, parallelism int, opts ...RunOption) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		configs, err := m.Configs()
		if err != nil {
			yield(Result{}, err)
			return
		}
		specs, err := m.metricSpecs()
		if err != nil {
			yield(Result{}, err)
			return
		}
		rcfg := applyRunOptions(opts)
		runner, err := newSweepRunner(rcfg, m, configs, specs)
		if err != nil {
			yield(Result{}, err)
			return
		}
		// The inner context tears the pool down when the consumer breaks
		// out (or an error path returns): queued scenarios observe the
		// cancellation and skip simulating. The deferred flush persists
		// the store index for whatever did complete — objects are already
		// durable on disk, so an interrupted sweep resumes from exactly
		// the scenarios that finished.
		inner, cancel := context.WithCancel(ctx)
		finished := false
		defer func() {
			cancel()
			if !finished {
				runner.flush()
			}
		}()
		for _, r := range parallel.Stream(inner, configs, parallelism, func(i int, cfg Scenario) Result {
			return runner.exec(inner, i, cfg)
		}) {
			if err := ctx.Err(); err != nil {
				yield(Result{}, err)
				return
			}
			if err := runner.err(); err != nil {
				yield(Result{}, err)
				return
			}
			if !yield(r, nil) {
				return
			}
		}
		// The inner stream stops silently when the context fires between
		// yields; surface the cancellation as the final pair.
		if err := ctx.Err(); err != nil {
			yield(Result{}, err)
			return
		}
		if err := runner.err(); err != nil {
			yield(Result{}, err)
			return
		}
		finished = true
		if err := runner.finish(rcfg.storeGC, m); err != nil {
			yield(Result{}, err)
		}
	}
}
