package blockadt

import (
	"context"
	"reflect"
	"testing"
)

// streamTestMatrix is small but multi-dimensional: pruned combinations,
// two seeds, 18 configs. Systems are pinned explicitly so registrations
// made by other tests (TestUserRegistrationExtends) cannot change the
// matrix under us.
func streamTestMatrix() Matrix {
	return Matrix{
		Systems:      []string{"Bitcoin", "Ethereum", "Algorand", "ByzCoin", "PeerCensus", "RedBelly", "Hyperledger"},
		Links:        []string{LinkSync, LinkAsync},
		Adversaries:  []string{AdvNone, AdvSelfish},
		Seeds:        2,
		TargetBlocks: 15,
	}
}

// TestStreamMatchesRun asserts the streaming API yields exactly the
// results the buffered Run reports, in the same matrix-expansion order,
// at a real worker count.
func TestStreamMatchesRun(t *testing.T) {
	m := streamTestMatrix()
	rep, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Result
	for r, err := range Stream(context.Background(), m, 4) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, r)
	}
	if len(streamed) != len(rep.Results) {
		t.Fatalf("streamed %d results, Run produced %d", len(streamed), len(rep.Results))
	}
	for i := range streamed {
		a, b := streamed[i], rep.Results[i]
		a.WallNS, b.WallNS = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("result %d differs:\nstream: %+v\nrun:    %+v", i, a, b)
		}
	}
}

// TestStreamExpansionError surfaces a bad matrix as the first yielded
// error.
func TestStreamExpansionError(t *testing.T) {
	var n int
	for _, err := range Stream(context.Background(), Matrix{Systems: []string{"Dogecoin"}}, 1) {
		n++
		if err == nil {
			t.Fatal("expected an expansion error")
		}
	}
	if n != 1 {
		t.Fatalf("iterator yielded %d pairs after the error, want exactly 1", n)
	}
}

// TestStreamEarlyBreak stops consuming mid-sweep; the iterator must
// return without deadlocking and without running the remaining scenarios
// on the consumer's behalf.
func TestStreamEarlyBreak(t *testing.T) {
	var n int
	for _, err := range Stream(context.Background(), streamTestMatrix(), 4) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("consumed %d results, want 3", n)
	}
}

// TestStreamCancellation cancels the context mid-iteration and expects
// the iterator to surface ctx.Err and stop.
func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var results, errs int
	for _, err := range Stream(ctx, streamTestMatrix(), 2) {
		if err != nil {
			errs++
			continue
		}
		results++
		cancel()
	}
	if errs != 1 {
		t.Fatalf("saw %d errors after cancellation, want 1", errs)
	}
	if results == 0 {
		t.Fatal("cancelled before any result was yielded")
	}
}
