package blockadt

import (
	"bytes"
	"runtime"
	"testing"
)

// These tests came with the scenario-matrix engine when it lived in
// internal/sweep; they pin the engine's core contracts — expansion,
// pruning, seed derivation, ordering, and cross-parallelism determinism
// — directly against the façade, which is the engine's only home now.

// table1Systems is the paper's Table 1 row order — pinned explicitly
// because other tests in this package register extra systems into the
// process-global registry, which an empty Systems dimension would
// otherwise pick up.
func table1Systems() []string {
	return []string{"Bitcoin", "Ethereum", "Algorand", "ByzCoin", "PeerCensus", "RedBelly", "Hyperledger"}
}

// sweepTestMatrix is a small but multi-dimensional matrix: 7 systems ×
// {sync,async} × {none,selfish} × 2 seeds with the unsupported combos
// pruned — 20 configurations.
func sweepTestMatrix() Matrix {
	return Matrix{
		Systems:      table1Systems(),
		Links:        []string{LinkSync, LinkAsync},
		Adversaries:  []string{AdvNone, AdvSelfish},
		Seeds:        2,
		TargetBlocks: 20,
	}
}

// TestDeterminismAcrossParallelism is the determinism regression test of
// the engine: the same matrix swept serially and across a real worker
// pool must produce byte-identical canonical JSON. Any shared-state leak
// between worker goroutines (a shared oracle, recorder, or prng stream)
// shows up here as a diff. The concurrent side uses max(4, NumCPU), not
// NumCPU alone: goroutines interleave (and the race detector watches
// them) even on a 1-core CI runner, where NumCPU would degenerate to the
// serial path and verify nothing.
func TestDeterminismAcrossParallelism(t *testing.T) {
	m := sweepTestMatrix()
	serial, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	concurrent, err := Run(m, workers)
	if err != nil {
		t.Fatal(err)
	}
	js, err := serial.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	jc, err := concurrent.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jc) {
		t.Fatalf("sweep output differs between parallelism 1 and %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			workers, js, jc)
	}
}

func TestConfigsExpansion(t *testing.T) {
	configs, err := sweepTestMatrix().Configs()
	if err != nil {
		t.Fatal(err)
	}
	// 7 systems sync/none ×2 seeds = 14, plus Bitcoin sync/selfish ×2
	// and async/none ×2 for each PoW system (Bitcoin, Ethereum).
	if len(configs) != 20 {
		t.Fatalf("expanded %d configs, want 20", len(configs))
	}
	seen := map[string]bool{}
	seeds := map[uint64]bool{}
	for _, c := range configs {
		if seen[c.Key()] {
			t.Fatalf("duplicate config key %s", c.Key())
		}
		seen[c.Key()] = true
		if seeds[c.Seed] {
			t.Fatalf("seed collision at %s", c.Key())
		}
		seeds[c.Seed] = true
		if c.Link == LinkAsync && c.System != "Bitcoin" && c.System != "Ethereum" {
			t.Fatalf("async leaked to the committee system %s", c.System)
		}
		if c.Adversary == AdvSelfish && c.System != "Bitcoin" {
			t.Fatalf("selfish leaked to %s", c.System)
		}
	}
}

func TestConfigsRejectUnknownDimensions(t *testing.T) {
	if _, err := (Matrix{Systems: []string{"Dogecoin"}}).Configs(); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := (Matrix{Links: []string{"wormhole"}}).Configs(); err == nil {
		t.Fatal("unknown link accepted")
	}
	if _, err := (Matrix{Adversaries: []string{"gremlin"}}).Configs(); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestDeriveSeedStability(t *testing.T) {
	c := Scenario{System: "Bitcoin", Link: LinkSync, Adversary: AdvNone, N: 8, Blocks: 30}
	if c.DeriveSeed(42) != c.DeriveSeed(42) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	if c.DeriveSeed(42) == c.DeriveSeed(43) {
		t.Fatal("root seed does not influence the stream")
	}
	d := c
	d.SeedIndex = 1
	if c.DeriveSeed(42) == d.DeriveSeed(42) {
		t.Fatal("seed index does not influence the stream")
	}
}

// TestTable1MatrixMatchesPaper sweeps the Table 1 matrix at the canonical
// seed and asserts every system classifies at the paper's level.
func TestTable1MatrixMatchesPaper(t *testing.T) {
	m := Table1(8, 30, 42)
	m.Systems = table1Systems()
	rep, err := Run(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 7 {
		t.Fatalf("Table 1 sweep ran %d configs, want 7", rep.Total)
	}
	for _, r := range rep.Results {
		if !r.Match {
			t.Errorf("%s measured %s, expected %s", r.Config.System, r.Level, r.Expected)
		}
	}
}

// TestResultsOrderIndependentOfParallelism pins the expansion-order
// guarantee separately from JSON encoding.
func TestResultsOrderIndependentOfParallelism(t *testing.T) {
	m := Matrix{Seeds: 2, TargetBlocks: 15}
	a, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].Config != b.Results[i].Config {
			t.Fatalf("result %d reordered: %v vs %v", i, a.Results[i].Config, b.Results[i].Config)
		}
	}
}
