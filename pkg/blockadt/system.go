package blockadt

import (
	"fmt"

	"blockadt/internal/core"
	"blockadt/internal/finality"
)

// System is a live blockchain object — the paper's refinement R(BT-ADT, Θ)
// — produced by New. Append and Read are the two operations of Definition
// 3.7; History exposes the recorded concurrent history for the consistency
// checkers; Finality returns the finalized prefix under the configured
// depth-d gadget.
type System interface {
	// Name returns the registered system name the instance was built from.
	Name() string
	// Refinement returns the paper's classification of the system.
	Refinement() string
	// Append implements the refined append(b) on behalf of proc: loop
	// getToken on the tip of f(bt), consume the token, concatenate —
	// atomically. It reports whether the block entered the tree.
	Append(proc ProcID, b Block) (bool, error)
	// Read implements read(): {b0}⌢f(bt).
	Read(proc ProcID) Chain
	// History returns an immutable snapshot of the recorded history.
	History() *History
	// Finality returns the currently finalized chain prefix: the selected
	// chain truncated by the gadget's depth, with a monotonicity check —
	// an error reports a finality violation (a finalized block left the
	// selected chain).
	Finality() (HistoryChain, error)
}

// Instance is the concrete System returned by New. Beyond the System
// interface it exposes the composed parts for inspection.
type Instance struct {
	spec   SystemSpec
	bc     *core.Blockchain
	gadget *finality.Gadget
}

var _ System = (*Instance)(nil)

// New composes a live System from the registry: the named system's profile
// picks the oracle family and selection function (overridable via
// WithOracle/WithSelector/WithOracleInstance), WithSeed seeds the oracle
// tapes, WithN sets the merit count (default 1, every merit granting with
// probability 1 so appends terminate deterministically — override with
// WithMerits for probabilistic validation).
func New(name string, opts ...Option) (*Instance, error) {
	spec, err := LookupSystem(name)
	if err != nil {
		return nil, err
	}
	s := applyOptions(opts)
	if err := s.simulationOnlyErr(); err != nil {
		return nil, err
	}

	orc := s.oracleInstance
	if orc != nil {
		// An injected oracle carries its own tape seed, merits and fork
		// bound; accepting the registry-construction knobs alongside it
		// would silently ignore them.
		switch {
		case s.oracle != "":
			return nil, fmt.Errorf("blockadt: WithOracle conflicts with WithOracleInstance")
		case s.forkBound != 0:
			return nil, fmt.Errorf("blockadt: WithForkBound conflicts with WithOracleInstance (the injected oracle fixes k)")
		case len(s.merits) != 0:
			return nil, fmt.Errorf("blockadt: WithMerits conflicts with WithOracleInstance (the injected oracle fixes its merit tapes)")
		case s.seed != 0:
			return nil, fmt.Errorf("blockadt: WithSeed conflicts with WithOracleInstance (the injected oracle fixes its tape seed)")
		case s.n != 0:
			return nil, fmt.Errorf("blockadt: WithN conflicts with WithOracleInstance (the merit count comes from the injected oracle)")
		}
	}
	if orc == nil {
		oracleName := s.oracle
		if oracleName == "" {
			oracleName = spec.Oracle
		}
		ospec, err := LookupOracle(oracleName)
		if err != nil {
			return nil, err
		}
		merits := s.merits
		if len(merits) == 0 {
			n := s.n
			if n <= 0 {
				n = 1
			}
			merits = make([]float64, n)
			for i := range merits {
				merits[i] = 1
			}
		}
		k := s.forkBound
		if k <= 0 {
			k = 1
		}
		orc = ospec.New(OracleConfig{K: k, Merits: merits, Seed: s.seed})
	}

	selectorName := s.selector
	if selectorName == "" {
		selectorName = spec.Selector
	}
	sel, err := NewSelector(selectorName)
	if err != nil {
		return nil, err
	}

	depth := s.finalityDepth
	if depth <= 0 {
		depth = 6
	}
	return &Instance{
		spec:   spec,
		bc:     core.New(core.Config{Oracle: orc, Selector: sel}),
		gadget: finality.New(depth, sel),
	}, nil
}

// Name implements System.
func (in *Instance) Name() string { return in.spec.Name }

// Refinement implements System.
func (in *Instance) Refinement() string { return in.spec.Refinement }

// Expected returns the consistency level the paper assigns to the system.
func (in *Instance) Expected() Level { return in.spec.Expected }

// Append implements System.
func (in *Instance) Append(proc ProcID, b Block) (bool, error) {
	ok, err := in.bc.Append(proc, b)
	if err != nil {
		return ok, fmt.Errorf("blockadt: append %s: %w", b.ID, err)
	}
	return ok, nil
}

// Read implements System.
func (in *Instance) Read(proc ProcID) Chain { return in.bc.Read(proc) }

// History implements System.
func (in *Instance) History() *History { return in.bc.History() }

// Finality implements System.
func (in *Instance) Finality() (HistoryChain, error) {
	return in.gadget.Observe(in.bc.Tree())
}

// FinalityDepth returns the gadget's configured depth d.
func (in *Instance) FinalityDepth() int { return in.gadget.Depth() }

// Oracle returns the oracle Θ the instance was refined with.
func (in *Instance) Oracle() *Oracle { return in.bc.Oracle() }

// Selector returns the selection function f.
func (in *Instance) Selector() Selector { return in.bc.Selector() }

// Tree returns a snapshot copy of the current BlockTree.
func (in *Instance) Tree() *Tree { return in.bc.Tree() }
