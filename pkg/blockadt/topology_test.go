package blockadt

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"blockadt/internal/chains"
)

// TestRegistryCrossProductNoThirdState is the composition property test
// of the unified executor: every registered (system, link, adversary,
// topology) tuple either executes deterministically or is excluded by a
// Supports predicate during matrix expansion — there is no third state
// where expansion admits a tuple the engine then rejects (or vice
// versa). The registries are enumerated live, so user registrations from
// other tests are held to the same contract as the built-ins.
func TestRegistryCrossProductNoThirdState(t *testing.T) {
	if testing.Short() {
		t.Skip("cross product is slow")
	}
	for _, sys := range SystemNames() {
		for _, lspec := range Links() {
			for _, aspec := range Adversaries() {
				for _, tspec := range Topologies() {
					m := Matrix{
						Systems:      []string{sys},
						Links:        []string{lspec.Name},
						Adversaries:  []string{aspec.Name},
						Topologies:   []string{tspec.Name},
						TargetBlocks: 10,
						RootSeed:     7,
					}
					configs, err := m.Configs()
					if err != nil {
						t.Fatalf("%s×%s×%s×%s: expansion error: %v", sys, lspec.Name, aspec.Name, tspec.Name, err)
					}
					supported := lspec.supportsSystem(sys) &&
						(aspec.Plan == nil || aspec.supportsSystem(sys, lspec.Name)) &&
						(tspec.Plan == nil || tspec.supportsScenario(sys, lspec.Name, aspec.Name))
					if supported != (len(configs) == 1) {
						t.Fatalf("%s×%s×%s×%s: Supports says %v but expansion produced %d configs",
							sys, lspec.Name, aspec.Name, tspec.Name, supported, len(configs))
					}
					if !supported {
						// The excluded state: running the tuple directly must
						// fail with the same verdict expansion gave.
						cfg := Scenario{
							System: sys, Link: lspec.Name, Adversary: aspec.Name,
							N: 8, Blocks: 10,
						}
						if tspec.Plan != nil {
							cfg.Topology = tspec.Name
						}
						if aspec.Plan != nil {
							cfg.Alpha = 0.34
						}
						if _, err := RunScenario(cfg); err == nil {
							t.Fatalf("%s×%s×%s×%s: pruned by expansion but RunScenario accepted it",
								sys, lspec.Name, aspec.Name, tspec.Name)
						}
						continue
					}
					// The executing state: deterministic, modulo wall clock.
					a, err := RunScenario(configs[0])
					if err != nil {
						t.Fatalf("%s×%s×%s×%s: admitted by expansion but failed to run: %v",
							sys, lspec.Name, aspec.Name, tspec.Name, err)
					}
					b, err := RunScenario(configs[0])
					if err != nil {
						t.Fatal(err)
					}
					a.WallNS, b.WallNS = 0, 0
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("%s×%s×%s×%s: nondeterministic:\n a: %+v\n b: %+v",
							sys, lspec.Name, aspec.Name, tspec.Name, a, b)
					}
				}
			}
		}
	}
}

// TestTopologySweepDeterministicAcrossParallelism sweeps every topology
// by name over the PoW systems and asserts the canonical JSON is
// byte-identical at parallelism 1 and a real worker pool — the topology
// dimension inherits the engine's determinism contract.
func TestTopologySweepDeterministicAcrossParallelism(t *testing.T) {
	m := Matrix{
		Systems:      []string{"Bitcoin", "Ethereum"},
		Topologies:   []string{TopoComplete, TopoGossip, TopoClustered},
		Seeds:        2,
		TargetBlocks: 30,
		RootSeed:     42,
	}
	serial, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	concurrent, err := Run(m, workers)
	if err != nil {
		t.Fatal(err)
	}
	js, err := serial.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	jc, err := concurrent.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jc) {
		t.Fatalf("topology sweep differs between parallelism 1 and %d", workers)
	}
	// 2 systems × 3 topologies × 2 seeds, minus Ethereum×clustered2
	// (clustered supports heaviest-chain selection only).
	if serial.Total != 10 {
		t.Fatalf("swept %d configs, want 10", serial.Total)
	}
	for _, r := range serial.Results {
		if !r.Match {
			t.Errorf("%s measured %s, expected %s", r.Config.Key(), r.Level, r.Expected)
		}
	}
	// The seed aggregator keys on topology too: 5 matrix points (Bitcoin
	// ×3 topologies + Ethereum×2), never topologies folded together.
	aggs := AggregateSeeds(serial.Results)
	if len(aggs) != 5 {
		t.Fatalf("aggregated %d configs, want 5 (topology must be part of the config key)", len(aggs))
	}
	for _, a := range aggs {
		if a.Seeds != 2 {
			t.Errorf("%s@%s folded %d runs, want 2", a.System, a.Topology, a.Seeds)
		}
	}
}

// TestTopologyKeySchema pins the topology key schema: the default
// complete graph stays out of scenario keys and JSON entirely (every
// pre-existing key, derived seed and store entry is unchanged), while
// non-default topologies append |topo= and |tp= segments.
func TestTopologyKeySchema(t *testing.T) {
	m := Matrix{
		Systems:      []string{"Bitcoin"},
		Topologies:   []string{TopoComplete, TopoGossip, TopoClustered},
		TargetBlocks: 20,
		RootSeed:     42,
	}
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 3 {
		t.Fatalf("expanded %d configs, want 3", len(configs))
	}
	complete, gossip, clustered := configs[0], configs[1], configs[2]
	if complete.Topology != "" || strings.Contains(complete.Key(), "topo=") {
		t.Fatalf("complete graph leaked into the key: %s", complete.Key())
	}
	legacy := Scenario{System: "Bitcoin", Link: LinkSync, Adversary: AdvNone, N: 8, Blocks: 20}
	if complete.Key() != legacy.Key() || complete.Seed != legacy.DeriveSeed(42) {
		t.Fatalf("complete-graph key or seed drifted: %s vs %s", complete.Key(), legacy.Key())
	}
	if want := legacy.Key() + "|topo=" + TopoGossip + "|tp=k=3"; gossip.Key() != want {
		t.Fatalf("gossip key = %s, want %s", gossip.Key(), want)
	}
	if !strings.Contains(clustered.Key(), "|topo="+TopoClustered+"|tp=clusters=2") {
		t.Fatalf("clustered key = %s", clustered.Key())
	}
	seen := map[uint64]bool{}
	for _, c := range configs {
		if seen[c.Seed] {
			t.Fatalf("topology dimension reused a derived seed: %s", c.Key())
		}
		seen[c.Seed] = true
	}
}

// TestSimulateWithTopology covers the options surface of the topology
// dimension: Simulate honors WithTopology deterministically; unsupported
// compositions, SimulateAdversary and New reject it with named errors.
func TestSimulateWithTopology(t *testing.T) {
	a, err := Simulate("Bitcoin", WithTopology(TopoGossip), WithBlocks(20), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate("Bitcoin", WithTopology(TopoGossip), WithBlocks(20), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Blocks != b.Blocks || a.Ticks != b.Ticks || a.Delivered != b.Delivered {
		t.Fatal("WithTopology simulation nondeterministic")
	}
	if !strings.Contains(a.System, "@"+TopoGossip) {
		t.Fatalf("result system %q does not carry the topology tag", a.System)
	}

	if _, err := Simulate("Hyperledger", WithTopology(TopoGossip)); err == nil {
		t.Fatal("committee system accepted a gossip topology")
	}
	if _, err := Simulate("Bitcoin", WithTopology("torus")); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("unknown topology: %v", err)
	}
	if _, err := SimulateAdversary("Bitcoin", AdvSelfish, WithTopology(TopoGossip)); err == nil ||
		!strings.Contains(err.Error(), "WithTopology") {
		t.Fatalf("SimulateAdversary accepted WithTopology: %v", err)
	}
	if _, err := New("Bitcoin", WithTopology(TopoGossip)); err == nil ||
		!strings.Contains(err.Error(), "WithTopology") {
		t.Fatalf("New accepted WithTopology: %v", err)
	}
}

// TestUnknownSystemSurfacesAsUnknownNameError pins satellite contract:
// when the executor rejects a composition the registries admitted (a
// custom link spec whose nil Supports claims every system), the façade
// converts the internal *chains.UnknownSystemError into its public typed
// error — callers handle one error surface, *UnknownNameError.
func TestUnknownSystemSurfacesAsUnknownNameError(t *testing.T) {
	const name = "test-claims-everything"
	if _, err := LookupLink(name); err != nil {
		RegisterLink(LinkSpec{
			Name:        name,
			Description: "test-only async variant with no Supports predicate",
			Plan: func(ex *Execution) {
				ex.Links = chains.AsyncLinks
				ex.Params.MaxDelay = 8
			},
			Hidden: true,
		})
	}
	_, err := Simulate("Algorand", WithLink(name))
	var unknown *UnknownNameError
	if !errors.As(err, &unknown) {
		t.Fatalf("want *UnknownNameError, got %v", err)
	}
	if !errors.Is(err, ErrUnknownName) {
		t.Fatalf("errors.Is(err, ErrUnknownName) = false for %v", err)
	}
	if unknown.Kind != "system" || unknown.Name != "Algorand" {
		t.Fatalf("got Kind %q Name %q, want system/Algorand", unknown.Kind, unknown.Name)
	}
	if len(unknown.Registered) == 0 {
		t.Fatal("Registered alternatives empty")
	}
}
