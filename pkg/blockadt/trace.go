package blockadt

import (
	"io"

	"blockadt/internal/obs"
)

// Span is the record of one scenario execution inside a sweep: where
// its wall-clock time went, phase by phase (queue wait, store read,
// simulation, store write), and how it was satisfied (simulated,
// cache-hit, coalesced, skipped). Spans measure the engine, never the
// simulation: a traced sweep's report is byte-identical to an untraced
// one at any parallelism. See docs/observability.md for the schema.
type Span = obs.Span

// Tracer receives completed scenario spans; implementations must be
// safe for concurrent use (spans arrive from every worker goroutine).
// NewSpanWriter and NewLatencies are the built-in implementations.
type Tracer = obs.Tracer

// SpanWriter is a Tracer that appends each span as one NDJSON line —
// the sink behind `btadt sweep -trace out.ndjson`. Call Close before
// reading the output.
type SpanWriter = obs.NDJSON

// Latencies is a Tracer folding spans into O(1)-memory per-phase,
// per-outcome latency histograms (Welford + P² sketches from
// internal/metrics): live p50/p95/p99 for queue wait vs store reads vs
// simulation vs persistence. `btadt serve` keeps one process-wide
// Latencies and exposes it at /metricsz in Prometheus form.
type Latencies = obs.Latencies

// LatencySummary is one (phase, outcome) histogram snapshot.
type LatencySummary = obs.LatencySummary

// Span outcome values.
const (
	SpanSimulated = obs.OutcomeSimulated
	SpanCacheHit  = obs.OutcomeCacheHit
	SpanCoalesced = obs.OutcomeCoalesced
	SpanSkipped   = obs.OutcomeSkipped
)

// NewSpanWriter returns a Tracer writing one JSON line per span to w.
func NewSpanWriter(w io.Writer) *SpanWriter { return obs.NewNDJSON(w) }

// NewLatencies returns an empty latency histogram set.
func NewLatencies() *Latencies { return obs.NewLatencies() }

// TaggedTracer wraps a tracer so every forwarded span carries the given
// request ID — how a serving layer ties engine spans back to the HTTP
// request that submitted them.
func TaggedTracer(request string, inner Tracer) Tracer { return obs.Tagged(request, inner) }

// WithTracer streams every scenario execution's Span into t as it
// completes. The option may be given several times; all tracers see all
// spans. Tracing is off the simulation path: with no tracer configured
// the engine takes no timestamps beyond its historical ones, and with
// one configured only wall-clock bookkeeping is added — the sweep's
// results and canonical JSON are unchanged either way.
func WithTracer(t Tracer) RunOption {
	return func(c *runConfig) {
		if t != nil {
			c.tracers = append(c.tracers, t)
		}
	}
}
