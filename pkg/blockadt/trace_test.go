package blockadt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"

	"blockadt/internal/obs"
)

// traceTestMatrix is a small pinned matrix (no registry-order coupling).
func traceTestMatrix(rootSeed uint64) Matrix {
	return Matrix{
		Systems:      []string{"Bitcoin"},
		Links:        []string{LinkSync, LinkAsync},
		Adversaries:  []string{AdvNone},
		Seeds:        3,
		RootSeed:     rootSeed,
		TargetBlocks: 8,
	}
}

// spanCollector is a threadsafe test tracer.
type spanCollector struct {
	mu    sync.Mutex
	spans []Span
}

func (c *spanCollector) ObserveSpan(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

func (c *spanCollector) byIndex() map[int]Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]Span, len(c.spans))
	for _, s := range c.spans {
		out[s.Index] = s
	}
	return out
}

// TestTracerSpansCoverSweep pins the span contract on a cold sweep with
// no store: one span per scenario, outcome simulated, simulate and
// total phases populated, keys canonical.
func TestTracerSpansCoverSweep(t *testing.T) {
	m := traceTestMatrix(101)
	configs, err := m.Configs()
	if err != nil {
		t.Fatal(err)
	}
	var tr spanCollector
	rep, err := Run(m, 2, WithTracer(&tr))
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.byIndex()
	if len(spans) != len(configs) {
		t.Fatalf("got %d spans for %d scenarios", len(spans), len(configs))
	}
	for i, cfg := range configs {
		sp, ok := spans[i]
		if !ok {
			t.Fatalf("no span for scenario %d", i)
		}
		if sp.Key != cfg.Key() {
			t.Fatalf("span %d key = %q, want %q", i, sp.Key, cfg.Key())
		}
		if sp.Outcome != SpanSimulated {
			t.Fatalf("span %d outcome = %q, want %q", i, sp.Outcome, SpanSimulated)
		}
		if sp.SimulateNS <= 0 {
			t.Fatalf("span %d simulateNs = %d, want > 0", i, sp.SimulateNS)
		}
		if sp.TotalNS < sp.SimulateNS {
			t.Fatalf("span %d totalNs %d < simulateNs %d", i, sp.TotalNS, sp.SimulateNS)
		}
		if sp.StoreGetNS != 0 || sp.StorePutNS != 0 {
			t.Fatalf("span %d has store phases without a store: %+v", i, sp)
		}
	}
	if rep.Total != len(configs) {
		t.Fatalf("report total = %d, want %d", rep.Total, len(configs))
	}
}

// TestTracedSweepJSONIdentical is the acceptance gate: enabling tracing
// at any parallelism leaves the canonical sweep JSON byte-identical.
func TestTracedSweepJSONIdentical(t *testing.T) {
	m := traceTestMatrix(102)
	baseline, err := Run(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, runtime.NumCPU()} {
		var buf bytes.Buffer
		w := NewSpanWriter(&buf)
		lat := NewLatencies()
		rep, err := Run(m, par, WithTracer(w), WithTracer(lat))
		if err != nil {
			t.Fatal(err)
		}
		got, err := rep.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("traced sweep JSON at parallel=%d differs from untraced baseline", par)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// The NDJSON sink saw every span and each line round-trips.
		sc := bufio.NewScanner(&buf)
		lines := 0
		for sc.Scan() {
			var sp Span
			if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
				t.Fatalf("bad trace line %q: %v", sc.Text(), err)
			}
			lines++
		}
		if lines != rep.Total {
			t.Fatalf("trace file has %d lines, want %d", lines, rep.Total)
		}
		// And the histograms aggregated the same executions.
		for _, s := range lat.Snapshot() {
			if s.Phase == obs.PhaseTotal && s.Count != rep.Total {
				t.Fatalf("latency total count = %d, want %d", s.Count, rep.Total)
			}
		}
	}
}

// TestTracerStoreOutcomes pins the outcome split across a cold
// store-backed sweep (simulated, with store get/put phases) and a warm
// rerun (cache-hit, read phase only).
func TestTracerStoreOutcomes(t *testing.T) {
	m := traceTestMatrix(103)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	var cold spanCollector
	if _, err := Run(m, 2, WithRunStore(store), WithTracer(&cold)); err != nil {
		t.Fatal(err)
	}
	for _, sp := range cold.byIndex() {
		if sp.Outcome != SpanSimulated {
			t.Fatalf("cold span outcome = %q, want simulated", sp.Outcome)
		}
		if sp.StoreGetNS <= 0 || sp.StorePutNS <= 0 {
			t.Fatalf("cold store-backed span missing store phases: %+v", sp)
		}
	}

	var warm spanCollector
	if _, err := Run(m, 2, WithRunStore(store), WithTracer(&warm)); err != nil {
		t.Fatal(err)
	}
	for _, sp := range warm.byIndex() {
		if sp.Outcome != SpanCacheHit {
			t.Fatalf("warm span outcome = %q, want cache-hit", sp.Outcome)
		}
		if sp.StoreGetNS <= 0 {
			t.Fatalf("warm span has no store read phase: %+v", sp)
		}
		if sp.SimulateNS != 0 || sp.StorePutNS != 0 {
			t.Fatalf("warm span simulated or wrote: %+v", sp)
		}
	}
}

// TestTaggedTracerRequestID pins the serve-side propagation contract.
func TestTaggedTracerRequestID(t *testing.T) {
	var tr spanCollector
	m := traceTestMatrix(104)
	if _, err := Run(m, 1, WithTracer(TaggedTracer("req-abc", &tr))); err != nil {
		t.Fatal(err)
	}
	for _, sp := range tr.byIndex() {
		if sp.Request != "req-abc" {
			t.Fatalf("span request = %q, want req-abc", sp.Request)
		}
	}
}

// TestBuildInfo sanity-checks the version triple every surface reports.
func TestBuildInfo(t *testing.T) {
	bi := Build()
	if bi.Engine != EngineVersion {
		t.Fatalf("engine = %q, want %q", bi.Engine, EngineVersion)
	}
	if bi.GoVersion == "" || bi.Version == "" {
		t.Fatalf("incomplete build info: %+v", bi)
	}
}
