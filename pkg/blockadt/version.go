package blockadt

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary a report, trace or profile came from:
// the module version (with the VCS revision when the build recorded
// one), the Go toolchain, and the engine version every run-store key is
// derived under. `btadt version` prints it, /healthz reports it, and
// the Prometheus exposition carries it as btadt_build_info labels — so
// a dashboard can tell two fleets apart before comparing their numbers.
type BuildInfo struct {
	// Version is the main module's version, e.g. "v1.2.3" or "(devel)",
	// suffixed with "+<short revision>" when the build embedded VCS info.
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary (runtime.Version).
	GoVersion string `json:"goVersion"`
	// Engine is the simulation-semantics version (EngineVersion): the
	// namespace every cached result lives under.
	Engine string `json:"engine"`
}

// Build returns the running binary's build information.
func Build() BuildInfo {
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				version += "+" + s.Value[:12]
			}
		}
	}
	return BuildInfo{
		Version:   version,
		GoVersion: runtime.Version(),
		Engine:    EngineVersion,
	}
}
