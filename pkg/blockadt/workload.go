package blockadt

import (
	"blockadt/internal/core"
	"blockadt/internal/figures"
)

// ForkWorkload is the shared-memory contention workload sampling the
// refinement hierarchy (Figures 8/14): Procs processes race Rounds rounds
// of appends against an oracle with fork bound K.
type ForkWorkload = core.ForkWorkload

// ForkResult is a ForkWorkload outcome (max fanout, successful appends,
// recorded history, final tree).
type ForkResult = core.ForkResult

// NamedHistory pairs a paper figure's name with its constructed history.
type NamedHistory = figures.Named

// FigureHistories returns the example histories of Figures 2–4 with the
// given convergence tail, in figure order.
func FigureHistories(tail int) []NamedHistory {
	return figures.All(tail)
}
